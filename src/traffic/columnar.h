// Columnar binary trace format — the out-of-core counterpart of the CSV
// trace (trace_io.h), built for full-paper scale (§2.1's 1.96 B tuples).
//
// On-disk layout (all integers little-endian; DESIGN.md §10):
//
//   file   := header chunk* footer trailer
//   header := "CSTB" u16 version u16 flags              (8 bytes)
//   chunk  := u32 'CHNK' u32 n_records u32 payload_len
//             payload u32 crc32                          (frame)
//   footer := u32 'FOOT' u32 n_chunks entry* u32 crc32
//   entry  := u64 offset u32 payload_len u32 n_records
//             u32 min_tower u32 max_tower
//             u32 min_minute u32 max_minute              (32 bytes)
//   trailer:= u64 footer_offset u32 'CSTE'               (12 bytes)
//
// The payload is six column blocks (u32 length + data) in record-field
// order: user ids, tower ids, start minutes, end minutes, byte counts,
// addresses. Time columns use zigzag-delta varints (a time-ordered trace
// has tiny deltas, so most land in one byte); ids and byte counts are
// plain varints; addresses are varint-length-prefixed strings. Column
// blocks let a reader decode only the fields it needs — the window-apply
// path never touches user ids or addresses.
//
// Every chunk is self-contained (delta bases reset per chunk) and CRC32
// framed (common/checksum.h), so a merge tool concatenates chunk frames
// verbatim and only rebuilds the footer, and a corrupt chunk is skipped
// and counted without giving up on the rest of the file. The footer's
// per-chunk tower/minute min-max ranges let shard-affine and time-range
// reads skip whole chunks without touching their pages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "traffic/trace_record.h"

namespace cellscope {

namespace obs {
class Counter;
class Histogram;
}  // namespace obs

/// A decoded chunk, column-oriented: the fields the streaming ingest
/// path applies to tower windows, in record order, without materializing
/// TrafficLog structs (StreamIngestor::ingest_columns consumes this).
struct DecodedColumns {
  std::vector<std::uint32_t> tower;
  std::vector<std::uint32_t> start;
  std::vector<std::uint32_t> end;
  std::vector<std::uint64_t> bytes;

  std::size_t size() const { return tower.size(); }
  void clear() {
    tower.clear();
    start.clear();
    end.clear();
    bytes.clear();
  }
};

namespace columnar {

inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kDefaultChunkRecords = 65536;

inline constexpr std::size_t kHeaderBytes = 8;        // magic+version+flags
inline constexpr std::size_t kChunkHeaderBytes = 12;  // magic+n+payload_len
inline constexpr std::size_t kChunkCrcBytes = 4;
inline constexpr std::size_t kIndexEntryBytes = 32;
inline constexpr std::size_t kFooterHeaderBytes = 8;  // magic+n_chunks
inline constexpr std::size_t kTrailerBytes = 12;      // footer_offset+magic

/// One footer index entry. `offset` addresses the chunk frame's first
/// byte (the 'CHNK' magic); the frame spans kChunkHeaderBytes +
/// payload_len + kChunkCrcBytes bytes.
struct ChunkIndexEntry {
  std::uint64_t offset = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t n_records = 0;
  std::uint32_t min_tower = 0;
  std::uint32_t max_tower = 0;
  std::uint32_t min_minute = 0;  ///< smallest start_minute in the chunk
  std::uint32_t max_minute = 0;  ///< largest end_minute in the chunk

  std::size_t frame_len() const {
    return kChunkHeaderBytes + payload_len + kChunkCrcBytes;
  }
};

/// Encodes `logs` as one complete chunk frame appended to `out`, and
/// fills `entry` (offset is left at 0 — the writer rebases it). `logs`
/// must be non-empty and at most UINT32_MAX records.
void encode_chunk(std::span<const TrafficLog> logs, std::string& out,
                  ChunkIndexEntry& entry);

/// Decodes a full chunk frame into TrafficLog records appended to `out`.
/// Validates the frame magic, lengths, and CRC and bounds-checks every
/// varint; returns false (leaving `out` untouched) on any corruption.
bool decode_chunk_records(const unsigned char* frame, std::size_t frame_len,
                          std::vector<TrafficLog>& out);

/// Column-selective decode: fills `out` (cleared first; capacity reused)
/// with the tower/start/end/bytes columns only, skipping the user-id and
/// address blocks wholesale. Same validation contract as
/// decode_chunk_records.
bool decode_chunk_columns(const unsigned char* frame, std::size_t frame_len,
                          DecodedColumns& out);

/// The 8-byte file header.
std::string encode_header();

/// Footer body + trailer for chunks whose entries already carry final
/// offsets; append at `footer_offset` (the current end of data).
std::string encode_footer(const std::vector<ChunkIndexEntry>& entries,
                          std::uint64_t footer_offset);

/// Validates header magic/version of a mapped or read file prefix.
bool check_header(const unsigned char* data, std::size_t len);

/// Parses and validates the footer of a fully mapped file: trailer magic,
/// footer bounds, footer CRC, and per-entry frame bounds (each chunk
/// frame must lie inside [kHeaderBytes, footer_offset), ascending).
/// Returns false with a diagnostic in `error` on any violation.
bool parse_footer(const unsigned char* data, std::size_t len,
                  std::vector<ChunkIndexEntry>& entries, std::string& error);

/// Same validation over just the footer region [footer_offset, file_end)
/// — footer body, CRC, and trailer — for readers that fetched those
/// bytes into a buffer instead of mapping the whole file. `region_len`
/// is the region's byte count; `footer_offset` its offset in the file.
bool parse_footer_region(const unsigned char* region, std::size_t region_len,
                         std::uint64_t footer_offset,
                         std::vector<ChunkIndexEntry>& entries,
                         std::string& error);

/// Reads the trailer's footer offset from the last kTrailerBytes of a
/// file (pass exactly those bytes). Returns false on a bad trailer magic.
bool read_trailer(const unsigned char* trailer, std::uint64_t& footer_offset);

/// Hot-path cached handles to the ingest-side IO metrics shared by the
/// binary trace readers (cellscope.io.chunks_{read,skipped,corrupt},
/// cellscope.io.bytes_mapped, cellscope.io.chunk_decode_ms).
struct IoMetrics {
  obs::Counter* chunks_read;
  obs::Counter* chunks_skipped;
  obs::Counter* chunks_corrupt;
  obs::Counter* bytes_mapped;
  obs::Histogram* decode_ms;
};
IoMetrics& io_metrics();

}  // namespace columnar

/// Streams records into a columnar trace file, chunk by chunk. append()
/// buffers at most one chunk's records; finish() (or the destructor)
/// flushes the tail chunk and writes the footer index. Throws IoError on
/// write failure.
class ColumnarTraceWriter {
 public:
  explicit ColumnarTraceWriter(
      const std::string& path,
      std::size_t chunk_records = columnar::kDefaultChunkRecords);
  ~ColumnarTraceWriter();

  void append(const TrafficLog& log);
  void append(std::span<const TrafficLog> logs);

  /// Flushes the tail chunk, writes footer + trailer, and closes.
  /// Idempotent; further append() calls throw.
  void finish();

  std::uint64_t records_written() const { return records_written_; }

  ColumnarTraceWriter(const ColumnarTraceWriter&) = delete;
  ColumnarTraceWriter& operator=(const ColumnarTraceWriter&) = delete;

 private:
  void flush_chunk();
  void write_bytes(const std::string& bytes);

  std::string path_;
  std::ofstream out_;
  std::size_t chunk_records_;
  std::vector<TrafficLog> pending_;
  std::vector<columnar::ChunkIndexEntry> index_;
  std::uint64_t offset_ = 0;  ///< current end-of-data file offset
  std::uint64_t records_written_ = 0;
  bool finished_ = false;
};

/// Writes logs as one columnar binary trace file (header, chunks, footer).
void write_trace_bin(const std::string& path,
                     const std::vector<TrafficLog>& logs,
                     std::size_t chunk_records = columnar::kDefaultChunkRecords);

}  // namespace cellscope
