#include "traffic/trace_io.h"

#include "traffic/trace_codec.h"

namespace cellscope {

// The CSV entry points predate the codec layer; they keep their exact
// historical contract (header row, reject accounting, failpoints,
// trace_reject_ratio verdict) by delegating to the kCsv backend.

void write_trace_csv(const std::string& path,
                     const std::vector<TrafficLog>& logs) {
  write_trace(path, logs, TraceCodec::kCsv);
}

std::vector<TrafficLog> read_trace_csv(const std::string& path) {
  return read_trace(path, TraceCodec::kCsv);
}

std::uint64_t total_bytes(const std::vector<TrafficLog>& logs) {
  std::uint64_t s = 0;
  for (const auto& log : logs) s += log.bytes;
  return s;
}

}  // namespace cellscope
