#include "traffic/trace_io.h"

#include <cstdlib>

#include "common/csv.h"
#include "common/error.h"

namespace cellscope {

namespace {
const char* kHeader[] = {"user_id", "tower_id",  "start_minute",
                         "end_minute", "bytes", "address"};
}

void write_trace_csv(const std::string& path,
                     const std::vector<TrafficLog>& logs) {
  CsvWriter writer(path);
  writer.write_row(std::vector<std::string>(std::begin(kHeader),
                                            std::end(kHeader)));
  for (const auto& log : logs) {
    writer.write_row({std::to_string(log.user_id),
                      std::to_string(log.tower_id),
                      std::to_string(log.start_minute),
                      std::to_string(log.end_minute),
                      std::to_string(log.bytes), log.address});
  }
  writer.close();
}

std::vector<TrafficLog> read_trace_csv(const std::string& path) {
  const auto rows = CsvReader::read_file(path);
  std::vector<TrafficLog> logs;
  if (rows.empty()) return logs;
  logs.reserve(rows.size() - 1);

  auto parse_u64 = [](const std::string& s, std::uint64_t& out) {
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
      return false;
    out = std::strtoull(s.c_str(), nullptr, 10);
    return true;
  };

  for (std::size_t i = 1; i < rows.size(); ++i) {  // skip header
    const auto& row = rows[i];
    if (row.size() != 6) continue;
    TrafficLog log;
    std::uint64_t tower = 0;
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    if (!parse_u64(row[0], log.user_id) || !parse_u64(row[1], tower) ||
        !parse_u64(row[2], start) || !parse_u64(row[3], end) ||
        !parse_u64(row[4], log.bytes))
      continue;
    log.tower_id = static_cast<std::uint32_t>(tower);
    log.start_minute = static_cast<std::uint32_t>(start);
    log.end_minute = static_cast<std::uint32_t>(end);
    log.address = row[5];
    logs.push_back(std::move(log));
  }
  return logs;
}

std::uint64_t total_bytes(const std::vector<TrafficLog>& logs) {
  std::uint64_t s = 0;
  for (const auto& log : logs) s += log.bytes;
  return s;
}

}  // namespace cellscope
