#include "traffic/trace_io.h"

#include <cstdlib>
#include <limits>

#include "common/csv.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/timer.h"

namespace cellscope {

namespace {
const char* kHeader[] = {"user_id", "tower_id",  "start_minute",
                         "end_minute", "bytes", "address"};

/// Reject ratio above which a trace file is considered corrupt — the
/// paper's trace loses well under 1% of lines to formatting defects.
constexpr double kMaxRejectRatio = 0.01;
}  // namespace

void write_trace_csv(const std::string& path,
                     const std::vector<TrafficLog>& logs) {
  if (CS_FAILPOINT("trace.write.fail"))
    throw IoError("failpoint trace.write.fail: refusing to write " + path);
  CsvWriter writer(path);
  writer.write_row(std::vector<std::string>(std::begin(kHeader),
                                            std::end(kHeader)));
  for (const auto& log : logs) {
    writer.write_row({std::to_string(log.user_id),
                      std::to_string(log.tower_id),
                      std::to_string(log.start_minute),
                      std::to_string(log.end_minute),
                      std::to_string(log.bytes), log.address});
  }
  writer.close();
}

std::vector<TrafficLog> read_trace_csv(const std::string& path) {
  if (CS_FAILPOINT("trace.read.fail"))
    throw IoError("failpoint trace.read.fail: refusing to read " + path);
  obs::StageSpan span("io.read_trace", "io", obs::LogLevel::kDebug);
  const auto rows = CsvReader::read_file(path);
  std::vector<TrafficLog> logs;
  if (rows.empty()) return logs;
  logs.reserve(rows.size() - 1);

  auto parse_u64 = [](const std::string& s, std::uint64_t& out) {
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
      return false;
    out = std::strtoull(s.c_str(), nullptr, 10);
    return true;
  };
  constexpr std::uint64_t kU32Max = std::numeric_limits<std::uint32_t>::max();

  // Malformed or out-of-range lines are counted and skipped, never fatal:
  // a single bad line must not abort a month-long ingest. The reject
  // ratio is recorded as a data-quality verdict below.
  std::size_t rejected = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {  // skip header
    const auto& row = rows[i];
    if (row.size() != 6) {
      ++rejected;
      continue;
    }
    TrafficLog log;
    std::uint64_t tower = 0;
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    if (!parse_u64(row[0], log.user_id) || !parse_u64(row[1], tower) ||
        !parse_u64(row[2], start) || !parse_u64(row[3], end) ||
        !parse_u64(row[4], log.bytes) ||
        // Out-of-range: ids/minutes that overflow their 32-bit fields, or
        // an interval violating the half-open end >= start contract.
        tower > kU32Max || start > kU32Max || end > kU32Max || end < start) {
      ++rejected;
      continue;
    }
    log.tower_id = static_cast<std::uint32_t>(tower);
    log.start_minute = static_cast<std::uint32_t>(start);
    log.end_minute = static_cast<std::uint32_t>(end);
    log.address = row[5];
    logs.push_back(std::move(log));
  }

  const std::size_t total = rows.size() - 1;
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("cellscope.io.trace_reads").add(1);
  registry.counter("cellscope.io.trace_records").add(logs.size());
  span.annotate({"records", logs.size()});
  span.annotate({"rejected", rejected});
  if (rejected > 0)
    registry.counter("cellscope.io.rejected_lines").add(rejected);
  if (total > 0) {
    auto result = obs::check_reject_ratio(rejected, total, kMaxRejectRatio);
    obs::QualityBoard::instance().record(
        {.check = "trace_reject_ratio",
         .stage = "io.read_trace",
         .severity = obs::Severity::kFail,
         .passed = result.passed,
         .value = result.value,
         .detail = std::move(result.detail)});
  }
  return logs;
}

std::uint64_t total_bytes(const std::vector<TrafficLog>& logs) {
  std::uint64_t s = 0;
  for (const auto& log : logs) s += log.bytes;
  return s;
}

}  // namespace cellscope
