// Memory-mapped columnar trace access — indexed, zero-copy, out-of-core.
//
// MmapTraceReader maps a columnar trace file (traffic/columnar.h) read-
// only and validates its footer index up front; chunk payloads are then
// decoded straight out of the mapping (no read() copies, no whole-trace
// vector), so a month of logs streams through a bounded amount of heap:
// the only per-chunk allocations are the reusable decode scratch buffers
// the caller owns. The kernel pages chunk data in and out on demand —
// the trace never has to fit in RAM.
//
// The footer's per-chunk tower/minute min-max ranges drive chunk
// skipping: a Filter that wants one day, or one shard's tower range,
// never touches the pages of chunks that cannot overlap it (counted on
// cellscope.io.chunks_skipped).
//
// Corruption contract: a chunk that fails its CRC or decode is skipped
// and counted (cellscope.io.chunks_corrupt) — never fatal — so one
// flipped bit does not abort a month-long ingest. File-level structure
// damage (bad header, unparseable footer) throws IoError from the
// constructor, before any data is consumed.
//
// Metrics: cellscope.io.chunks_{read,skipped,corrupt} counters,
// cellscope.io.bytes_mapped counter, cellscope.io.chunk_decode_ms
// histogram.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "traffic/columnar.h"
#include "traffic/trace_record.h"

namespace cellscope {

/// Chunk predicate: a chunk is visited only when its index ranges
/// overlap both intervals (inclusive). Defaults pass everything.
struct ChunkFilter {
  std::uint32_t min_tower = 0;
  std::uint32_t max_tower = 0xffffffffu;
  std::uint32_t min_minute = 0;
  std::uint32_t max_minute = 0xffffffffu;
};

/// Read-only mapped view of one columnar trace file.
class MmapTraceReader {
 public:
  /// Maps the file and validates header + footer index; throws IoError
  /// when the file cannot be opened/mapped or its structure is invalid.
  explicit MmapTraceReader(const std::string& path);
  ~MmapTraceReader();

  std::size_t chunk_count() const { return index_.size(); }
  const columnar::ChunkIndexEntry& chunk(std::size_t i) const {
    return index_[i];
  }
  /// Sum of per-chunk record counts over the whole file.
  std::uint64_t record_count() const { return record_count_; }
  /// Bytes of file data this reader mapped.
  std::uint64_t bytes_mapped() const { return size_; }
  const std::string& path() const { return path_; }

  bool chunk_overlaps(std::size_t i, const ChunkFilter& filter) const {
    const auto& e = index_[i];
    return e.max_tower >= filter.min_tower && e.min_tower <= filter.max_tower &&
           e.max_minute >= filter.min_minute && e.min_minute <= filter.max_minute;
  }

  /// Decodes chunk i into TrafficLog records (`out` is cleared first;
  /// capacity is reused across calls). Returns false — with `out` empty
  /// and cellscope.io.chunks_corrupt bumped — when the chunk is corrupt.
  bool read_chunk(std::size_t i, std::vector<TrafficLog>& out) const;

  /// Column-selective decode of chunk i (tower/start/end/bytes only) for
  /// the bulk ingest path. Same corruption contract as read_chunk.
  bool read_chunk_columns(std::size_t i, DecodedColumns& out) const;

  /// Raw frame bytes of chunk i (header + payload + CRC) — the merge
  /// tool copies these verbatim, CRC and all.
  std::span<const unsigned char> chunk_frame(std::size_t i) const;

  MmapTraceReader(const MmapTraceReader&) = delete;
  MmapTraceReader& operator=(const MmapTraceReader&) = delete;

 private:
  std::string path_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  std::vector<columnar::ChunkIndexEntry> index_;
  std::uint64_t record_count_ = 0;
};

/// Reads every (valid) record of a columnar trace file via the mapped
/// reader — the binary counterpart of read_trace_csv. Corrupt chunks are
/// skipped and counted; the whole result materializes in memory, so this
/// is for tests/tools — the streaming paths (stream/replay.h) are the
/// out-of-core way in.
std::vector<TrafficLog> read_trace_bin(const std::string& path);

/// Concatenates the chunks of `inputs` into `output` and writes a fresh
/// footer index — chunk frames are copied verbatim (they are self-
/// contained and CRC-framed), so merging a month of daily files costs
/// one sequential copy plus an index rebuild, never a decode. Returns
/// the merged record count. Throws IoError on any unreadable input.
std::uint64_t merge_trace_bin(const std::vector<std::string>& inputs,
                              const std::string& output);

}  // namespace cellscope
