// User mobility model — the human layer under the traffic patterns.
//
// The paper's frequency analysis reads commuting out of tower traffic
// ("the human migration flow from home to office via transport during
// rush hours", §5.2). This module models that flow generatively: each
// subscriber gets a home tower, possibly a workplace tower, a commute
// schedule routed past a transport tower, and weekend leisure behavior.
// The mobility-aware trace generator (generate_mobility_trace) then emits
// connection logs from wherever each user *is*, so per-user tower
// transitions in the logs encode the commute — measurable by the
// commute-flow analysis and the ext_commute_flows bench.
#pragma once

#include <cstdint>
#include <vector>

#include "city/tower.h"
#include "common/rng.h"
#include "common/time_grid.h"

namespace cellscope {

/// Where a user is during one slot.
enum class UserPlace : int {
  kHome = 0,
  kTransit = 1,
  kWork = 2,
  kLeisure = 3,
};

/// One subscriber's latent profile.
struct UserProfile {
  std::uint64_t user_id = 0;
  std::uint32_t home_tower = 0;
  std::uint32_t work_tower = 0;     ///< valid iff employed
  std::uint32_t transit_tower = 0;  ///< transport tower on the commute
  std::uint32_t leisure_tower = 0;  ///< weekend destination
  bool employed = true;
  double commute_out_h = 8.0;   ///< leave home (hour of day)
  double commute_back_h = 18.0; ///< leave work
  double transit_minutes = 40.0;
};

/// Mobility-model options.
struct MobilityOptions {
  std::size_t n_users = 2000;
  double employment_rate = 0.75;
  /// Probability of a weekend leisure outing (12:00-18:00).
  double weekend_outing_prob = 0.6;
  std::uint64_t seed = 20140801;
};

/// Assigns every user a home/work/transit/leisure tower and a schedule,
/// and answers "where is user u at slot s".
class MobilityModel {
 public:
  /// Builds profiles over a deployment. Homes are drawn from resident and
  /// comprehensive towers, workplaces from office/comprehensive, transit
  /// stops from transport towers (nearest to the home-work midpoint),
  /// leisure destinations from entertainment towers. Falls back to any
  /// tower when a category is absent.
  static MobilityModel create(const std::vector<Tower>& towers,
                              const MobilityOptions& options);

  const std::vector<UserProfile>& users() const { return users_; }

  /// The user's place during an absolute slot (deterministic schedule;
  /// weekends use the leisure pattern).
  UserPlace place_at(const UserProfile& user, std::size_t slot) const;

  /// The tower the user camps on during an absolute slot.
  std::uint32_t tower_at(const UserProfile& user, std::size_t slot) const;

 private:
  explicit MobilityModel(std::vector<UserProfile> users);

  std::vector<UserProfile> users_;
};

}  // namespace cellscope
