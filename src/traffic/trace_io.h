// Trace persistence (CSV).
//
// Real traces arrive as flat files; persisting and re-reading the synthetic
// trace exercises the same unstructured-input path the paper's Hadoop jobs
// consume.
#pragma once

#include <string>
#include <vector>

#include "traffic/trace_record.h"

namespace cellscope {

/// Writes logs as CSV with a header row.
void write_trace_csv(const std::string& path,
                     const std::vector<TrafficLog>& logs);

/// Reads a trace CSV produced by write_trace_csv. Malformed rows are
/// returned as-is where parseable and skipped when structurally broken
/// (wrong column count / non-numeric ids) — cleaning is the pipeline's
/// job, not the reader's.
std::vector<TrafficLog> read_trace_csv(const std::string& path);

/// Total bytes across logs.
std::uint64_t total_bytes(const std::vector<TrafficLog>& logs);

}  // namespace cellscope
