// Trace persistence (CSV).
//
// Real traces arrive as flat files; persisting and re-reading the synthetic
// trace exercises the same unstructured-input path the paper's Hadoop jobs
// consume.
#pragma once

#include <string>
#include <vector>

#include "traffic/trace_record.h"

namespace cellscope {

/// Writes logs as CSV with a header row.
void write_trace_csv(const std::string& path,
                     const std::vector<TrafficLog>& logs);

/// Reads a trace CSV produced by write_trace_csv. Malformed rows (wrong
/// column count, non-numeric fields) and out-of-range rows (32-bit field
/// overflow, end_minute < start_minute) are skipped — never fatal — and
/// counted on cellscope.io.rejected_lines; every read records a
/// "trace_reject_ratio" quality verdict that fails when more than 1% of
/// lines were rejected. Semantic cleaning (duplicates, conflicts) remains
/// the pipeline cleaner's job.
std::vector<TrafficLog> read_trace_csv(const std::string& path);

/// Total bytes across logs.
std::uint64_t total_bytes(const std::vector<TrafficLog>& logs);

}  // namespace cellscope
