// Pluggable trace codecs: one reader/writer interface over the CSV,
// sequential-binary, and mmap backends.
//
// Callers pick a backend with an explicit TraceCodec or let kAuto route
// by extension: ".csv" is the text format, ".ctb"/".bin" the columnar
// binary (traffic/columnar.h) — read through the mmap backend by
// default, since indexed mapped access is strictly better than a
// sequential read of the same bytes. The streaming interface hands out
// bounded batches, so every consumer — conversion tools, the stream
// replay harness, tests — can process a trace far larger than RAM
// without ever holding more than one batch of records.
//
// read_trace/write_trace are the whole-file conveniences the legacy
// trace_io entry points delegate to.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "traffic/trace_record.h"

namespace cellscope {

/// Backend selector. kAuto routes by file extension.
enum class TraceCodec {
  kAuto,    ///< by extension: .csv -> kCsv, .ctb/.bin -> kMmap (read) / kBinary (write)
  kCsv,     ///< text CSV (trace_io.h format)
  kBinary,  ///< columnar binary via buffered sequential reads
  kMmap,    ///< columnar binary via the mapped, indexed reader
};

/// The codec kAuto resolves to for `path` in read position.
TraceCodec trace_codec_for_path(const std::string& path);

/// Streaming record source. next_batch() fills a caller-owned vector
/// (cleared first; capacity reused) and returns false once the trace is
/// exhausted — after which the per-file accounting (reject counters,
/// quality verdicts, corrupt-chunk counts) has been recorded.
class TraceReader {
 public:
  virtual ~TraceReader() = default;

  /// Next batch of records; false at end of stream (out left empty).
  virtual bool next_batch(std::vector<TrafficLog>& out) = 0;

  /// Total records in the trace when the format indexes it (columnar
  /// backends); nullopt for CSV, which only knows at EOF.
  virtual std::optional<std::uint64_t> record_count() const {
    return std::nullopt;
  }
};

/// Streaming record sink. finish() finalizes the file (footer index for
/// the columnar backend); the destructor finishes best-effort.
class TraceWriter {
 public:
  virtual ~TraceWriter() = default;
  virtual void append(std::span<const TrafficLog> logs) = 0;
  virtual void finish() = 0;
};

/// Opens a streaming reader; `batch_records` bounds batch sizes for the
/// CSV backend (columnar backends batch per chunk). Throws IoError when
/// the file cannot be opened or its structure is invalid.
std::unique_ptr<TraceReader> open_trace_reader(
    const std::string& path, TraceCodec codec = TraceCodec::kAuto,
    std::size_t batch_records = 65536);

/// Opens a streaming writer; `chunk_records` sizes columnar chunks (the
/// CSV backend ignores it).
std::unique_ptr<TraceWriter> open_trace_writer(
    const std::string& path, TraceCodec codec = TraceCodec::kAuto,
    std::size_t chunk_records = 65536);

/// Whole-file read through the selected codec (malformed rows / corrupt
/// chunks are skipped and counted per the backend's contract).
std::vector<TrafficLog> read_trace(const std::string& path,
                                   TraceCodec codec = TraceCodec::kAuto);

/// Whole-file write through the selected codec.
void write_trace(const std::string& path, const std::vector<TrafficLog>& logs,
                 TraceCodec codec = TraceCodec::kAuto);

}  // namespace cellscope
