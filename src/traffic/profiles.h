// The five canonical traffic profiles.
//
// Substitute for the per-cluster aggregate traffic the paper measures
// (DESIGN.md §2): each urban functional region gets a parametric
// weekday/weekend diurnal profile calibrated to the published statistics —
//   * peak and valley times (Table 5: resident 21:30, transport 08:00 &
//     18:00, office late morning, entertainment 18:00 weekday vs 12:30
//     weekend; valleys 04:00-05:00),
//   * peak-valley ratios (Table 4: transport ≈133, office ≈23,
//     entertainment ≈32, resident/comprehensive ≈9),
//   * weekday/weekend totals (Fig. 10a: transport 1.49, office 1.79,
//     others ≈1),
//   * absolute peak magnitudes (Table 4 maxima, bytes per 10 minutes).
// The comprehensive profile is the Table-1-weighted mixture of the four
// pure profiles, matching the paper's finding that comprehensive traffic
// tracks the city-wide average (Fig. 11, bottom row).
#pragma once

#include <cstddef>
#include <vector>

#include "city/functional_region.h"
#include "common/time_grid.h"

namespace cellscope {

/// One Gaussian bump of a diurnal shape.
struct DiurnalBump {
  double hour = 12.0;    ///< center, hour-of-day in [0, 24)
  double height = 1.0;   ///< relative height (max bump should be 1)
  double sigma_h = 1.5;  ///< width in hours (circular distance)
};

/// Shape of one day type (weekday or weekend).
struct DayShape {
  std::vector<DiurnalBump> bumps;
  /// Night floor relative to the day's peak (sets the peak-valley ratio).
  double floor = 0.05;
  /// Depth of the early-morning dip carved into the floor so the valley
  /// lands at a unique time (the paper: 04:00-05:00).
  double dip_depth = 0.3;
  /// Center of the dip, hour-of-day.
  double dip_hour = 4.7;

  /// Shape value at an hour-of-day; max over the day is ~1.
  double value(double hour) const;
};

/// A full weekly traffic profile with absolute scale.
class TrafficProfile {
 public:
  TrafficProfile(DayShape weekday, DayShape weekend, double weekend_scale,
                 double peak_bytes);

  /// Expected traffic (bytes per 10-minute slot) at an absolute slot of the
  /// 4-week grid.
  double rate(std::size_t slot) const;

  /// The full 4032-slot expected series.
  std::vector<double> series() const;

  /// One averaged day (144 slots) of the weekday / weekend shape, in
  /// absolute bytes.
  std::vector<double> weekday_day() const;
  std::vector<double> weekend_day() const;

  double weekend_scale() const { return weekend_scale_; }
  double peak_bytes() const { return peak_bytes_; }

  /// The canonical profile of a region. Comprehensive is the Table-1
  /// weighted mixture of the four pure profiles.
  static TrafficProfile canonical(FunctionalRegion r);

  /// Linear combination of profiles evaluated slot-wise (weights need not
  /// be normalized). Used for mixtures and the comprehensive profile.
  static std::vector<double> mix_series(
      const std::vector<const TrafficProfile*>& profiles,
      const std::vector<double>& weights);

 private:
  DayShape weekday_;
  DayShape weekend_;
  double weekend_scale_;
  double peak_bytes_;
  // Precomputed per-day-type slot tables (144 entries each).
  std::vector<double> weekday_table_;
  std::vector<double> weekend_table_;
};

/// The four pure canonical profiles indexed by pure-region order
/// (resident, transport, office, entertainment).
const std::vector<TrafficProfile>& pure_profiles();

}  // namespace cellscope
