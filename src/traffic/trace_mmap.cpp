#include "traffic/trace_mmap.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>

#include "common/error.h"
#include "common/failpoint.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope {

using columnar::io_metrics;

MmapTraceReader::MmapTraceReader(const std::string& path) : path_(path) {
  if (CS_FAILPOINT("trace.read.fail"))
    throw IoError("failpoint trace.read.fail: refusing to read " + path);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("cannot open for reading: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw IoError("cannot stat: " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    throw IoError("empty columnar trace file: " + path);
  }
  void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (mapped == MAP_FAILED) throw IoError("mmap failed: " + path);
  data_ = static_cast<const unsigned char*>(mapped);
  // The replay paths walk chunks front to back; tell the kernel so
  // readahead stays ahead of the decode loop.
  ::madvise(mapped, size_, MADV_SEQUENTIAL);

  std::string error;
  if (!columnar::check_header(data_, size_)) {
    ::munmap(mapped, size_);
    data_ = nullptr;
    throw IoError("bad columnar trace header: " + path);
  }
  if (!columnar::parse_footer(data_, size_, index_, error)) {
    ::munmap(mapped, size_);
    data_ = nullptr;
    throw IoError("bad columnar trace footer: " + path + " (" + error + ")");
  }
  for (const auto& entry : index_) record_count_ += entry.n_records;
  io_metrics().bytes_mapped->add(size_);
}

MmapTraceReader::~MmapTraceReader() {
  if (data_ != nullptr)
    ::munmap(const_cast<unsigned char*>(data_), size_);
}

std::span<const unsigned char> MmapTraceReader::chunk_frame(
    std::size_t i) const {
  const auto& entry = index_[i];
  return {data_ + entry.offset, entry.frame_len()};
}

bool MmapTraceReader::read_chunk(std::size_t i,
                                 std::vector<TrafficLog>& out) const {
  out.clear();
  const auto frame = chunk_frame(i);
  obs::ScopedTimer timer(io_metrics().decode_ms);
  if (!columnar::decode_chunk_records(frame.data(), frame.size(), out)) {
    io_metrics().chunks_corrupt->add(1);
    obs::log_warn("io.chunk_corrupt",
                  {{"path", path_}, {"chunk", i}, {"mode", "records"}});
    out.clear();
    return false;
  }
  io_metrics().chunks_read->add(1);
  return true;
}

bool MmapTraceReader::read_chunk_columns(std::size_t i,
                                         DecodedColumns& out) const {
  const auto frame = chunk_frame(i);
  obs::ScopedTimer timer(io_metrics().decode_ms);
  if (!columnar::decode_chunk_columns(frame.data(), frame.size(), out)) {
    io_metrics().chunks_corrupt->add(1);
    obs::log_warn("io.chunk_corrupt",
                  {{"path", path_}, {"chunk", i}, {"mode", "columns"}});
    return false;
  }
  io_metrics().chunks_read->add(1);
  return true;
}

std::vector<TrafficLog> read_trace_bin(const std::string& path) {
  MmapTraceReader reader(path);
  std::vector<TrafficLog> logs;
  logs.reserve(reader.record_count());
  std::vector<TrafficLog> chunk;
  for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
    if (!reader.read_chunk(i, chunk)) continue;  // skip-and-count
    logs.insert(logs.end(), std::make_move_iterator(chunk.begin()),
                std::make_move_iterator(chunk.end()));
  }
  return logs;
}

std::uint64_t merge_trace_bin(const std::vector<std::string>& inputs,
                              const std::string& output) {
  if (CS_FAILPOINT("trace.write.fail"))
    throw IoError("failpoint trace.write.fail: refusing to write " + output);
  std::ofstream out(output, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot open for writing: " + output);
  const std::string header = columnar::encode_header();
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  std::uint64_t offset = header.size();
  std::uint64_t records = 0;
  std::vector<columnar::ChunkIndexEntry> merged;
  for (const std::string& input : inputs) {
    MmapTraceReader reader(input);
    for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
      const auto frame = reader.chunk_frame(i);
      out.write(reinterpret_cast<const char*>(frame.data()),
                static_cast<std::streamsize>(frame.size()));
      columnar::ChunkIndexEntry entry = reader.chunk(i);
      entry.offset = offset;
      merged.push_back(entry);
      offset += frame.size();
      records += entry.n_records;
    }
  }
  const std::string footer = columnar::encode_footer(merged, offset);
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  out.close();
  if (!out) throw IoError("write failed: " + output);
  return records;
}

}  // namespace cellscope
