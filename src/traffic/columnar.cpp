#include "traffic/columnar.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/checksum.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/varint.h"
#include "obs/metrics.h"

namespace cellscope {
namespace columnar {

namespace {

constexpr std::uint32_t kChunkMagic = 0x4b4e4843;   // "CHNK"
constexpr std::uint32_t kFooterMagic = 0x544f4f46;  // "FOOT"
constexpr std::uint32_t kTailMagic = 0x45545343;    // "CSTE"
constexpr char kFileMagic[4] = {'C', 'S', 'T', 'B'};

void append_u16(std::uint16_t v, std::string& out) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void append_u32(std::uint32_t v, std::string& out) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void append_u64(std::uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t read_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));  // little-endian hosts only (DESIGN.md §10)
  return v;
}

std::uint64_t read_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Column-block boundaries of a validated payload: begin/end byte ranges
/// of the six blocks, each prefixed by a u32 length. Returns false when
/// any block overruns the payload.
struct ColumnSpans {
  const unsigned char* begin[6];
  const unsigned char* end[6];
};

bool split_columns(const unsigned char* payload, std::size_t payload_len,
                   ColumnSpans& spans) {
  const unsigned char* p = payload;
  const unsigned char* limit = payload + payload_len;
  for (int c = 0; c < 6; ++c) {
    if (limit - p < 4) return false;
    const std::uint32_t len = read_u32(p);
    p += 4;
    if (static_cast<std::size_t>(limit - p) < len) return false;
    spans.begin[c] = p;
    spans.end[c] = p + len;
    p += len;
  }
  return p == limit;  // trailing garbage is corruption too
}

/// Validates the chunk frame (magic, lengths, CRC) and exposes the
/// payload. The CRC covers n_records + payload_len + payload, so header
/// bit flips are caught as well.
bool open_frame(const unsigned char* frame, std::size_t frame_len,
                std::uint32_t& n_records, const unsigned char*& payload,
                std::size_t& payload_len) {
  if (frame_len < kChunkHeaderBytes + kChunkCrcBytes) return false;
  if (read_u32(frame) != kChunkMagic) return false;
  n_records = read_u32(frame + 4);
  payload_len = read_u32(frame + 8);
  if (frame_len != kChunkHeaderBytes + payload_len + kChunkCrcBytes)
    return false;
  const std::uint32_t stored = read_u32(frame + kChunkHeaderBytes + payload_len);
  if (CS_FAILPOINT("trace.chunk.corrupt")) return false;
  return crc32(frame + 4, 8 + payload_len) == stored;
}

}  // namespace

void encode_chunk(std::span<const TrafficLog> logs, std::string& out,
                  ChunkIndexEntry& entry) {
  CS_CHECK_MSG(!logs.empty(), "columnar chunk must hold at least one record");
  CS_CHECK_MSG(logs.size() <= std::numeric_limits<std::uint32_t>::max(),
               "columnar chunk record count overflows u32");

  entry = ChunkIndexEntry{};
  entry.n_records = static_cast<std::uint32_t>(logs.size());
  entry.min_tower = std::numeric_limits<std::uint32_t>::max();
  entry.min_minute = std::numeric_limits<std::uint32_t>::max();

  // The six column blocks; time columns are zigzag deltas so both the
  // forward-ordered common case and arbitrary orders encode losslessly.
  std::string cols[6];
  cols[0].reserve(logs.size() * 3);
  cols[1].reserve(logs.size() * 2);
  cols[2].reserve(logs.size());
  cols[3].reserve(logs.size());
  cols[4].reserve(logs.size() * 3);
  std::uint32_t prev_start = 0;
  for (const TrafficLog& log : logs) {
    varint_encode(log.user_id, cols[0]);
    varint_encode(log.tower_id, cols[1]);
    varint_encode(zigzag_encode(static_cast<std::int64_t>(log.start_minute) -
                                static_cast<std::int64_t>(prev_start)),
                  cols[2]);
    prev_start = log.start_minute;
    varint_encode(zigzag_encode(static_cast<std::int64_t>(log.end_minute) -
                                static_cast<std::int64_t>(log.start_minute)),
                  cols[3]);
    varint_encode(log.bytes, cols[4]);
    varint_encode(log.address.size(), cols[5]);
    cols[5].append(log.address);

    entry.min_tower = std::min(entry.min_tower, log.tower_id);
    entry.max_tower = std::max(entry.max_tower, log.tower_id);
    entry.min_minute = std::min(entry.min_minute, log.start_minute);
    entry.max_minute = std::max(entry.max_minute, log.end_minute);
  }

  std::size_t payload_len = 0;
  for (const auto& col : cols) payload_len += 4 + col.size();
  CS_CHECK_MSG(payload_len <= std::numeric_limits<std::uint32_t>::max(),
               "columnar chunk payload overflows u32 — lower chunk_records");
  entry.payload_len = static_cast<std::uint32_t>(payload_len);

  const std::size_t frame_start = out.size();
  out.reserve(out.size() + entry.frame_len());
  append_u32(kChunkMagic, out);
  append_u32(entry.n_records, out);
  append_u32(entry.payload_len, out);
  for (const auto& col : cols) {
    append_u32(static_cast<std::uint32_t>(col.size()), out);
    out.append(col);
  }
  // CRC over n_records + payload_len + payload (everything after the
  // magic), so a flipped header field fails validation like flipped data.
  const std::uint32_t crc =
      crc32(out.data() + frame_start + 4, 8 + entry.payload_len);
  append_u32(crc, out);
}

bool decode_chunk_records(const unsigned char* frame, std::size_t frame_len,
                          std::vector<TrafficLog>& out) {
  std::uint32_t n_records = 0;
  const unsigned char* payload = nullptr;
  std::size_t payload_len = 0;
  if (!open_frame(frame, frame_len, n_records, payload, payload_len))
    return false;
  payload = frame + kChunkHeaderBytes;
  ColumnSpans cols;
  if (!split_columns(payload, payload_len, cols)) return false;

  const std::size_t base = out.size();
  out.resize(base + n_records);
  const unsigned char* user = cols.begin[0];
  const unsigned char* tower = cols.begin[1];
  const unsigned char* start = cols.begin[2];
  const unsigned char* end = cols.begin[3];
  const unsigned char* bytes = cols.begin[4];
  const unsigned char* addr = cols.begin[5];
  std::uint32_t prev_start = 0;
  for (std::uint32_t i = 0; i < n_records; ++i) {
    TrafficLog& log = out[base + i];
    std::uint64_t v = 0;
    if (!varint_decode(&user, cols.end[0], v)) break;
    log.user_id = v;
    if (!varint_decode(&tower, cols.end[1], v) ||
        v > std::numeric_limits<std::uint32_t>::max())
      break;
    log.tower_id = static_cast<std::uint32_t>(v);
    if (!varint_decode(&start, cols.end[2], v)) break;
    const std::int64_t s = prev_start + zigzag_decode(v);
    if (s < 0 || s > std::numeric_limits<std::uint32_t>::max()) break;
    log.start_minute = static_cast<std::uint32_t>(s);
    prev_start = log.start_minute;
    if (!varint_decode(&end, cols.end[3], v)) break;
    const std::int64_t e = s + zigzag_decode(v);
    if (e < 0 || e > std::numeric_limits<std::uint32_t>::max()) break;
    log.end_minute = static_cast<std::uint32_t>(e);
    if (!varint_decode(&bytes, cols.end[4], v)) break;
    log.bytes = v;
    if (!varint_decode(&addr, cols.end[5], v) ||
        v > static_cast<std::uint64_t>(cols.end[5] - addr))
      break;
    log.address.assign(reinterpret_cast<const char*>(addr),
                       static_cast<std::size_t>(v));
    addr += v;
    if (i + 1 == n_records) {
      out.resize(base + n_records);
      return true;
    }
  }
  out.resize(base);  // leave the output untouched on corruption
  return n_records == 0;
}

bool decode_chunk_columns(const unsigned char* frame, std::size_t frame_len,
                          DecodedColumns& out) {
  out.clear();
  std::uint32_t n_records = 0;
  const unsigned char* payload = nullptr;
  std::size_t payload_len = 0;
  if (!open_frame(frame, frame_len, n_records, payload, payload_len))
    return false;
  payload = frame + kChunkHeaderBytes;
  ColumnSpans cols;
  if (!split_columns(payload, payload_len, cols)) return false;

  out.tower.resize(n_records);
  out.start.resize(n_records);
  out.end.resize(n_records);
  out.bytes.resize(n_records);
  // User ids and addresses are skipped wholesale — split_columns already
  // jumped over their blocks; this is the columnar layout paying off.
  const unsigned char* tower = cols.begin[1];
  const unsigned char* start = cols.begin[2];
  const unsigned char* end = cols.begin[3];
  const unsigned char* bytes = cols.begin[4];
  std::uint32_t prev_start = 0;
  for (std::uint32_t i = 0; i < n_records; ++i) {
    std::uint64_t v = 0;
    if (!varint_decode(&tower, cols.end[1], v) ||
        v > std::numeric_limits<std::uint32_t>::max()) {
      out.clear();
      return false;
    }
    out.tower[i] = static_cast<std::uint32_t>(v);
    if (!varint_decode(&start, cols.end[2], v)) {
      out.clear();
      return false;
    }
    const std::int64_t s = prev_start + zigzag_decode(v);
    if (s < 0 || s > std::numeric_limits<std::uint32_t>::max()) {
      out.clear();
      return false;
    }
    out.start[i] = static_cast<std::uint32_t>(s);
    prev_start = out.start[i];
    if (!varint_decode(&end, cols.end[3], v)) {
      out.clear();
      return false;
    }
    const std::int64_t e = s + zigzag_decode(v);
    if (e < 0 || e > std::numeric_limits<std::uint32_t>::max()) {
      out.clear();
      return false;
    }
    out.end[i] = static_cast<std::uint32_t>(e);
    if (!varint_decode(&bytes, cols.end[4], v)) {
      out.clear();
      return false;
    }
    out.bytes[i] = v;
  }
  return true;
}

std::string encode_header() {
  std::string out(kFileMagic, sizeof(kFileMagic));
  append_u16(kVersion, out);
  append_u16(0, out);  // flags, reserved
  return out;
}

std::string encode_footer(const std::vector<ChunkIndexEntry>& entries,
                          std::uint64_t footer_offset) {
  std::string out;
  out.reserve(kFooterHeaderBytes + entries.size() * kIndexEntryBytes + 4 +
              kTrailerBytes);
  append_u32(kFooterMagic, out);
  append_u32(static_cast<std::uint32_t>(entries.size()), out);
  for (const auto& entry : entries) {
    append_u64(entry.offset, out);
    append_u32(entry.payload_len, out);
    append_u32(entry.n_records, out);
    append_u32(entry.min_tower, out);
    append_u32(entry.max_tower, out);
    append_u32(entry.min_minute, out);
    append_u32(entry.max_minute, out);
  }
  append_u32(crc32(out.data(), out.size()), out);
  append_u64(footer_offset, out);
  append_u32(kTailMagic, out);
  return out;
}

bool check_header(const unsigned char* data, std::size_t len) {
  if (len < kHeaderBytes) return false;
  if (std::memcmp(data, kFileMagic, sizeof(kFileMagic)) != 0) return false;
  const std::uint16_t version =
      static_cast<std::uint16_t>(data[4] | (data[5] << 8));
  return version == kVersion;
}

bool read_trailer(const unsigned char* trailer, std::uint64_t& footer_offset) {
  if (read_u32(trailer + 8) != kTailMagic) return false;
  footer_offset = read_u64(trailer);
  return true;
}

bool parse_footer_region(const unsigned char* region, std::size_t region_len,
                         std::uint64_t footer_offset,
                         std::vector<ChunkIndexEntry>& entries,
                         std::string& error) {
  entries.clear();
  if (region_len < kFooterHeaderBytes + 4 + kTrailerBytes) {
    error = "footer region too small";
    return false;
  }
  const unsigned char* trailer = region + region_len - kTrailerBytes;
  std::uint64_t echoed = 0;
  if (!read_trailer(trailer, echoed)) {
    error = "bad trailer magic (truncated or not a columnar trace)";
    return false;
  }
  if (echoed != footer_offset) {
    error = "trailer footer offset mismatch";
    return false;
  }
  if (read_u32(region) != kFooterMagic) {
    error = "bad footer magic";
    return false;
  }
  const std::uint32_t n_chunks = read_u32(region + 4);
  const std::size_t footer_len =
      kFooterHeaderBytes + static_cast<std::size_t>(n_chunks) * kIndexEntryBytes;
  if (footer_len + 4 + kTrailerBytes != region_len) {
    error = "footer length disagrees with file size";
    return false;
  }
  if (crc32(region, footer_len) != read_u32(region + footer_len)) {
    error = "footer CRC mismatch";
    return false;
  }
  entries.reserve(n_chunks);
  std::uint64_t cursor = kHeaderBytes;
  for (std::uint32_t c = 0; c < n_chunks; ++c) {
    const unsigned char* p = region + kFooterHeaderBytes + c * kIndexEntryBytes;
    ChunkIndexEntry entry;
    entry.offset = read_u64(p);
    entry.payload_len = read_u32(p + 8);
    entry.n_records = read_u32(p + 12);
    entry.min_tower = read_u32(p + 16);
    entry.max_tower = read_u32(p + 20);
    entry.min_minute = read_u32(p + 24);
    entry.max_minute = read_u32(p + 28);
    if (entry.offset != cursor ||
        entry.offset + entry.frame_len() > footer_offset) {
      error = "chunk " + std::to_string(c) + " frame out of bounds";
      entries.clear();
      return false;
    }
    cursor = entry.offset + entry.frame_len();
    entries.push_back(entry);
  }
  if (cursor != footer_offset) {
    error = "chunk frames do not tile the data section";
    entries.clear();
    return false;
  }
  return true;
}

bool parse_footer(const unsigned char* data, std::size_t len,
                  std::vector<ChunkIndexEntry>& entries, std::string& error) {
  entries.clear();
  constexpr std::size_t kMinTail = kFooterHeaderBytes + 4 + kTrailerBytes;
  if (len < kHeaderBytes + kMinTail) {
    error = "file too small for header + trailer";
    return false;
  }
  const unsigned char* trailer = data + len - kTrailerBytes;
  std::uint64_t footer_offset = 0;
  if (!read_trailer(trailer, footer_offset)) {
    error = "bad trailer magic (truncated or not a columnar trace)";
    return false;
  }
  // Subtract rather than add on the right-hand side: a corrupted offset
  // near UINT64_MAX must not wrap past the bound.
  if (footer_offset < kHeaderBytes || footer_offset > len - kMinTail) {
    error = "footer offset out of bounds";
    return false;
  }
  return parse_footer_region(data + footer_offset, len - footer_offset,
                             footer_offset, entries, error);
}

IoMetrics& io_metrics() {
  static IoMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::instance();
    return IoMetrics{
        &registry.counter("cellscope.io.chunks_read"),
        &registry.counter("cellscope.io.chunks_skipped"),
        &registry.counter("cellscope.io.chunks_corrupt"),
        &registry.counter("cellscope.io.bytes_mapped"),
        &registry.histogram("cellscope.io.chunk_decode_ms"),
    };
  }();
  return metrics;
}

}  // namespace columnar

ColumnarTraceWriter::ColumnarTraceWriter(const std::string& path,
                                         std::size_t chunk_records)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      chunk_records_(chunk_records) {
  CS_CHECK_MSG(chunk_records_ >= 1, "chunk_records must be positive");
  if (CS_FAILPOINT("trace.write.fail"))
    throw IoError("failpoint trace.write.fail: refusing to write " + path);
  if (!out_) throw IoError("cannot open for writing: " + path);
  pending_.reserve(chunk_records_);
  write_bytes(columnar::encode_header());
}

ColumnarTraceWriter::~ColumnarTraceWriter() {
  try {
    finish();
  } catch (const Error&) {
    // Destructors must not throw; an unfinished file fails footer
    // validation on read, which is the detectable outcome we want.
  }
}

void ColumnarTraceWriter::append(const TrafficLog& log) {
  append(std::span<const TrafficLog>(&log, 1));
}

void ColumnarTraceWriter::append(std::span<const TrafficLog> logs) {
  CS_CHECK_MSG(!finished_, "append after finish on " + path_);
  for (const TrafficLog& log : logs) {
    pending_.push_back(log);
    if (pending_.size() >= chunk_records_) flush_chunk();
  }
}

void ColumnarTraceWriter::flush_chunk() {
  if (pending_.empty()) return;
  std::string frame;
  columnar::ChunkIndexEntry entry;
  columnar::encode_chunk(pending_, frame, entry);
  entry.offset = offset_;
  write_bytes(frame);
  index_.push_back(entry);
  records_written_ += pending_.size();
  pending_.clear();
}

void ColumnarTraceWriter::write_bytes(const std::string& bytes) {
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out_) throw IoError("write failed: " + path_);
  offset_ += bytes.size();
}

void ColumnarTraceWriter::finish() {
  if (finished_) return;
  flush_chunk();
  write_bytes(columnar::encode_footer(index_, offset_));
  out_.close();
  if (!out_) throw IoError("close failed: " + path_);
  finished_ = true;
}

void write_trace_bin(const std::string& path,
                     const std::vector<TrafficLog>& logs,
                     std::size_t chunk_records) {
  ColumnarTraceWriter writer(path, chunk_records);
  writer.append(std::span<const TrafficLog>(logs));
  writer.finish();
}

}  // namespace cellscope
