#include "traffic/trace_codec.h"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string_view>
#include <utility>

#include "common/csv.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/timer.h"
#include "traffic/columnar.h"
#include "traffic/trace_mmap.h"

namespace cellscope {

namespace {

const char* kCsvHeader[] = {"user_id",   "tower_id", "start_minute",
                            "end_minute", "bytes",    "address"};

/// Reject ratio above which a trace file is considered corrupt — the
/// paper's trace loses well under 1% of lines to formatting defects.
constexpr double kMaxRejectRatio = 0.01;

constexpr std::uint64_t kU32Max = std::numeric_limits<std::uint32_t>::max();

/// Digits-only u64 parse matching the legacy strtoull semantics: rejects
/// empty, signed, or non-numeric fields; saturates on 64-bit overflow.
bool parse_u64_field(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  for (const char c : s)
    if (c < '0' || c > '9') return false;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), out);
  if (res.ec == std::errc::result_out_of_range)
    out = std::numeric_limits<std::uint64_t>::max();
  return true;
}

bool fill_log(const std::string_view* cells, TrafficLog& log) {
  std::uint64_t tower = 0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  if (!parse_u64_field(cells[0], log.user_id) ||
      !parse_u64_field(cells[1], tower) || !parse_u64_field(cells[2], start) ||
      !parse_u64_field(cells[3], end) || !parse_u64_field(cells[4], log.bytes) ||
      // Out-of-range: ids/minutes that overflow their 32-bit fields, or
      // an interval violating the half-open end >= start contract.
      tower > kU32Max || start > kU32Max || end > kU32Max || end < start)
    return false;
  log.tower_id = static_cast<std::uint32_t>(tower);
  log.start_minute = static_cast<std::uint32_t>(start);
  log.end_minute = static_cast<std::uint32_t>(end);
  log.address.assign(cells[5].data(), cells[5].size());
  return true;
}

/// Parses one data line. The quote-free common case tokenizes into views
/// over `line` with zero allocations; quoted lines fall back to the
/// RFC-4180 parser. `cells` is caller-owned scratch reused across lines.
bool parse_trace_line(const std::string& line, TrafficLog& log,
                      std::vector<std::string_view>& cells) {
  if (CsvReader::split_unquoted(line, cells)) {
    if (cells.size() != 6) return false;
    return fill_log(cells.data(), log);
  }
  const std::vector<std::string> slow = CsvReader::parse_line(line);
  if (slow.size() != 6) return false;
  cells.clear();
  for (const std::string& cell : slow) cells.emplace_back(cell);
  return fill_log(cells.data(), log);
}

/// Per-file accounting shared by the binary backends, recorded once at
/// end of stream: read/record counters plus a corrupt-chunk quality
/// verdict (the binary analogue of the CSV trace_reject_ratio).
void record_binary_trace_read(std::optional<obs::StageSpan>& span,
                              std::size_t records, std::size_t chunks,
                              std::size_t corrupt) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("cellscope.io.trace_reads").add(1);
  registry.counter("cellscope.io.trace_records").add(records);
  if (span) {
    span->annotate({"records", records});
    span->annotate({"chunks", chunks});
    span->annotate({"corrupt_chunks", corrupt});
  }
  if (chunks > 0) {
    auto result = obs::check_reject_ratio(corrupt, chunks, kMaxRejectRatio);
    obs::QualityBoard::instance().record(
        {.check = "trace_chunk_corrupt_ratio",
         .stage = "io.read_trace",
         .severity = obs::Severity::kFail,
         .passed = result.passed,
         .value = result.value,
         .detail = std::move(result.detail)});
  }
  span.reset();
}

/// Streaming CSV reader — the line-at-a-time successor of the legacy
/// whole-file read_trace_csv, with identical reject accounting: the same
/// counters, span annotations, and trace_reject_ratio verdict, recorded
/// once when the stream is exhausted (or the reader is destroyed).
class CsvTraceReader final : public TraceReader {
 public:
  CsvTraceReader(const std::string& path, std::size_t batch_records)
      : batch_records_(batch_records == 0 ? 1 : batch_records) {
    if (CS_FAILPOINT("trace.read.fail"))
      throw IoError("failpoint trace.read.fail: refusing to read " + path);
    span_.emplace("io.read_trace", "io", obs::LogLevel::kDebug);
    in_.open(path);
    if (!in_) throw IoError("cannot open for reading: " + path);
  }

  ~CsvTraceReader() override { finalize(); }

  bool next_batch(std::vector<TrafficLog>& out) override {
    out.clear();
    if (done_) return false;
    if (out.capacity() < batch_records_) out.reserve(batch_records_);
    while (out.size() < batch_records_ && std::getline(in_, line_)) {
      if (!line_.empty() && line_.back() == '\r') line_.pop_back();
      if (!header_seen_) {  // first line is the column header
        header_seen_ = true;
        continue;
      }
      ++data_lines_;
      TrafficLog log;
      if (parse_trace_line(line_, log, cells_))
        out.push_back(std::move(log));
      else
        ++rejected_;
    }
    if (out.empty()) {
      done_ = true;
      finalize();
      return false;
    }
    records_ += out.size();
    return true;
  }

 private:
  void finalize() {
    if (finalized_) return;
    finalized_ = true;
    if (!header_seen_) {  // a file with no lines at all records nothing
      span_.reset();
      return;
    }
    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("cellscope.io.trace_reads").add(1);
    registry.counter("cellscope.io.trace_records").add(records_);
    if (span_) {
      span_->annotate({"records", records_});
      span_->annotate({"rejected", rejected_});
    }
    if (rejected_ > 0)
      registry.counter("cellscope.io.rejected_lines").add(rejected_);
    if (data_lines_ > 0) {
      auto result =
          obs::check_reject_ratio(rejected_, data_lines_, kMaxRejectRatio);
      obs::QualityBoard::instance().record(
          {.check = "trace_reject_ratio",
           .stage = "io.read_trace",
           .severity = obs::Severity::kFail,
           .passed = result.passed,
           .value = result.value,
           .detail = std::move(result.detail)});
    }
    span_.reset();
  }

  std::size_t batch_records_;
  std::optional<obs::StageSpan> span_;
  std::ifstream in_;
  std::string line_;
  std::vector<std::string_view> cells_;
  bool header_seen_ = false;
  bool done_ = false;
  bool finalized_ = false;
  std::size_t data_lines_ = 0;
  std::size_t records_ = 0;
  std::size_t rejected_ = 0;
};

/// Sequential columnar reader over buffered file reads — the no-mmap
/// fallback. Reads the footer index up front (so corruption recovery and
/// chunk accounting match the mapped reader), then streams chunk frames
/// through one reused buffer.
class BinTraceReader final : public TraceReader {
 public:
  explicit BinTraceReader(const std::string& path) : path_(path) {
    if (CS_FAILPOINT("trace.read.fail"))
      throw IoError("failpoint trace.read.fail: refusing to read " + path);
    in_.open(path, std::ios::binary);
    if (!in_) throw IoError("cannot open for reading: " + path);
    in_.seekg(0, std::ios::end);
    const auto end_pos = in_.tellg();
    if (end_pos < 0) throw IoError("cannot stat: " + path);
    const std::uint64_t size = static_cast<std::uint64_t>(end_pos);

    constexpr std::size_t kMinTail =
        columnar::kFooterHeaderBytes + 4 + columnar::kTrailerBytes;
    if (size < columnar::kHeaderBytes + kMinTail)
      throw IoError("bad columnar trace header: " + path +
                    " (file too small)");
    unsigned char header[columnar::kHeaderBytes];
    read_at(0, header, sizeof(header));
    if (!columnar::check_header(header, sizeof(header)))
      throw IoError("bad columnar trace header: " + path);

    unsigned char trailer[columnar::kTrailerBytes];
    read_at(size - columnar::kTrailerBytes, trailer, sizeof(trailer));
    std::uint64_t footer_offset = 0;
    if (!columnar::read_trailer(trailer, footer_offset))
      throw IoError("bad columnar trace footer: " + path +
                    " (bad trailer magic)");
    if (footer_offset < columnar::kHeaderBytes ||
        footer_offset > size - kMinTail)
      throw IoError("bad columnar trace footer: " + path +
                    " (footer offset out of bounds)");
    std::vector<unsigned char> region(size - footer_offset);
    read_at(footer_offset, region.data(), region.size());
    std::string error;
    if (!columnar::parse_footer_region(region.data(), region.size(),
                                       footer_offset, index_, error))
      throw IoError("bad columnar trace footer: " + path + " (" + error + ")");
    for (const auto& entry : index_) record_count_ += entry.n_records;
    span_.emplace("io.read_trace", "io", obs::LogLevel::kDebug);
  }

  ~BinTraceReader() override { finalize(); }

  bool next_batch(std::vector<TrafficLog>& out) override {
    out.clear();
    auto& metrics = columnar::io_metrics();
    while (next_chunk_ < index_.size()) {
      const std::size_t i = next_chunk_++;
      const auto& entry = index_[i];
      frame_.resize(entry.frame_len());
      read_at(entry.offset, frame_.data(), frame_.size());
      bool ok;
      {
        obs::ScopedTimer timer(metrics.decode_ms);
        ok = columnar::decode_chunk_records(frame_.data(), frame_.size(), out);
      }
      if (!ok) {  // skip-and-count, same contract as the mapped reader
        metrics.chunks_corrupt->add(1);
        obs::log_warn("io.chunk_corrupt",
                      {{"path", path_}, {"chunk", i}, {"mode", "records"}});
        ++corrupt_;
        out.clear();
        continue;
      }
      metrics.chunks_read->add(1);
      records_ += out.size();
      return true;
    }
    finalize();
    return false;
  }

  std::optional<std::uint64_t> record_count() const override {
    return record_count_;
  }

 private:
  void read_at(std::uint64_t offset, unsigned char* buf, std::size_t n) {
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(offset));
    in_.read(reinterpret_cast<char*>(buf), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n)
      throw IoError("short read in columnar trace: " + path_);
  }

  void finalize() {
    if (finalized_) return;
    finalized_ = true;
    record_binary_trace_read(span_, records_, index_.size(), corrupt_);
  }

  std::string path_;
  std::ifstream in_;
  std::vector<columnar::ChunkIndexEntry> index_;
  std::vector<unsigned char> frame_;
  std::optional<obs::StageSpan> span_;
  std::uint64_t record_count_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t records_ = 0;
  std::size_t corrupt_ = 0;
  bool finalized_ = false;
};

/// Batch adapter over the mapped reader: one chunk per batch, decoded
/// straight out of the mapping.
class MmapBatchReader final : public TraceReader {
 public:
  explicit MmapBatchReader(const std::string& path) : reader_(path) {
    span_.emplace("io.read_trace", "io", obs::LogLevel::kDebug);
  }

  ~MmapBatchReader() override { finalize(); }

  bool next_batch(std::vector<TrafficLog>& out) override {
    out.clear();
    while (next_chunk_ < reader_.chunk_count()) {
      const std::size_t i = next_chunk_++;
      if (reader_.read_chunk(i, out)) {
        records_ += out.size();
        return true;
      }
      ++corrupt_;
    }
    finalize();
    return false;
  }

  std::optional<std::uint64_t> record_count() const override {
    return reader_.record_count();
  }

 private:
  void finalize() {
    if (finalized_) return;
    finalized_ = true;
    record_binary_trace_read(span_, records_, reader_.chunk_count(), corrupt_);
  }

  MmapTraceReader reader_;
  std::optional<obs::StageSpan> span_;
  std::size_t next_chunk_ = 0;
  std::size_t records_ = 0;
  std::size_t corrupt_ = 0;
  bool finalized_ = false;
};

class CsvTraceWriter final : public TraceWriter {
 public:
  explicit CsvTraceWriter(const std::string& path) {
    if (CS_FAILPOINT("trace.write.fail"))
      throw IoError("failpoint trace.write.fail: refusing to write " + path);
    writer_.emplace(path);
    writer_->write_row(
        std::vector<std::string>(std::begin(kCsvHeader), std::end(kCsvHeader)));
  }

  void append(std::span<const TrafficLog> logs) override {
    for (const TrafficLog& log : logs) {
      writer_->write_row({std::to_string(log.user_id),
                          std::to_string(log.tower_id),
                          std::to_string(log.start_minute),
                          std::to_string(log.end_minute),
                          std::to_string(log.bytes), log.address});
    }
  }

  void finish() override { writer_->close(); }

 private:
  std::optional<CsvWriter> writer_;
};

class BinTraceWriter final : public TraceWriter {
 public:
  BinTraceWriter(const std::string& path, std::size_t chunk_records)
      : writer_(path, chunk_records) {}

  void append(std::span<const TrafficLog> logs) override {
    writer_.append(logs);
  }

  void finish() override { writer_.finish(); }

 private:
  ColumnarTraceWriter writer_;
};

}  // namespace

TraceCodec trace_codec_for_path(const std::string& path) {
  const auto dot = path.find_last_of('.');
  const std::string_view ext = dot == std::string::npos
                                   ? std::string_view{}
                                   : std::string_view(path).substr(dot + 1);
  if (ext == "ctb" || ext == "bin") return TraceCodec::kMmap;
  return TraceCodec::kCsv;
}

std::unique_ptr<TraceReader> open_trace_reader(const std::string& path,
                                               TraceCodec codec,
                                               std::size_t batch_records) {
  if (codec == TraceCodec::kAuto) codec = trace_codec_for_path(path);
  switch (codec) {
    case TraceCodec::kCsv:
      return std::make_unique<CsvTraceReader>(path, batch_records);
    case TraceCodec::kBinary:
      return std::make_unique<BinTraceReader>(path);
    case TraceCodec::kMmap:
      return std::make_unique<MmapBatchReader>(path);
    case TraceCodec::kAuto:
      break;
  }
  throw InvalidArgument("unresolvable trace codec for " + path);
}

std::unique_ptr<TraceWriter> open_trace_writer(const std::string& path,
                                               TraceCodec codec,
                                               std::size_t chunk_records) {
  if (codec == TraceCodec::kAuto) codec = trace_codec_for_path(path);
  switch (codec) {
    case TraceCodec::kCsv:
      return std::make_unique<CsvTraceWriter>(path);
    case TraceCodec::kBinary:
    case TraceCodec::kMmap:
      return std::make_unique<BinTraceWriter>(path, chunk_records);
    case TraceCodec::kAuto:
      break;
  }
  throw InvalidArgument("unresolvable trace codec for " + path);
}

std::vector<TrafficLog> read_trace(const std::string& path, TraceCodec codec) {
  auto reader = open_trace_reader(path, codec);
  std::vector<TrafficLog> logs;
  if (const auto count = reader->record_count()) {
    logs.reserve(*count);
  } else {
    // CSV only knows its record count at EOF; pre-size from the file
    // size over a conservative average row width so a month-scale load
    // does one big allocation instead of a growth cascade.
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(path, ec);
    if (!ec && bytes > 0)
      logs.reserve(static_cast<std::size_t>(bytes / 32) + 1);
  }
  std::vector<TrafficLog> batch;
  while (reader->next_batch(batch))
    logs.insert(logs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  return logs;
}

void write_trace(const std::string& path, const std::vector<TrafficLog>& logs,
                 TraceCodec codec) {
  auto writer = open_trace_writer(path, codec);
  writer->append(std::span<const TrafficLog>(logs));
  writer->finish();
}

}  // namespace cellscope
