// Mobility-aware trace generation.
//
// Unlike generate_trace (which decomposes per-tower intensity into
// sessions), this generator works user-first: every subscriber emits
// sessions from wherever the mobility model places them, so the resulting
// logs carry real per-user trajectories — home in the evening, a transport
// tower during rush hour, the office at midday. Input to the commute-flow
// analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/mobility.h"
#include "traffic/trace_record.h"

namespace cellscope {

/// Mobility-trace knobs.
struct MobilityTraceOptions {
  std::uint64_t seed = 99;
  /// Mean sessions per user per hour at the daily activity peak.
  double peak_sessions_per_hour = 1.5;
  /// Lognormal session bytes: exp(N(mu, sigma)).
  double bytes_mu = 11.0;  ///< median ≈ 60 KB
  double bytes_sigma = 1.2;
  /// Generate days [day_begin, day_end) of the grid.
  int day_begin = 0;
  int day_end = 7;
};

/// Emits session logs for every user over the day window, following the
/// mobility model's schedules. Logs are time-ordered per user (globally
/// sorted by start time).
std::vector<TrafficLog> generate_mobility_trace(
    const std::vector<Tower>& towers, const MobilityModel& mobility,
    const MobilityTraceOptions& options);

/// The diurnal session-activity multiplier in [0, 1] (people use their
/// phones little at 4 AM, most around midday and evening).
double activity_level(double hour_of_day);

}  // namespace cellscope
