#include "traffic/profiles.h"

#include <cmath>

#include "common/error.h"

namespace cellscope {

namespace {

/// Circular hour distance on the 24-hour clock.
double hour_distance(double a, double b) {
  const double d = std::fabs(a - b);
  return std::min(d, 24.0 - d);
}

double gauss(double x, double sigma) {
  return std::exp(-x * x / (2.0 * sigma * sigma));
}

}  // namespace

double DayShape::value(double hour) const {
  CS_CHECK_MSG(hour >= 0.0 && hour < 24.0, "hour out of range");
  double bump_sum = 0.0;
  for (const auto& b : bumps)
    bump_sum += b.height * gauss(hour_distance(hour, b.hour), b.sigma_h);
  const double dip = dip_depth * gauss(hour_distance(hour, dip_hour), 1.3);
  return floor * (1.0 - dip) + (1.0 - floor) * std::min(1.0, bump_sum);
}

TrafficProfile::TrafficProfile(DayShape weekday, DayShape weekend,
                               double weekend_scale, double peak_bytes)
    : weekday_(std::move(weekday)),
      weekend_(std::move(weekend)),
      weekend_scale_(weekend_scale),
      peak_bytes_(peak_bytes) {
  CS_CHECK_MSG(weekend_scale_ > 0.0, "weekend scale must be positive");
  CS_CHECK_MSG(peak_bytes_ > 0.0, "peak bytes must be positive");
  weekday_table_.resize(TimeGrid::kSlotsPerDay);
  weekend_table_.resize(TimeGrid::kSlotsPerDay);
  for (int s = 0; s < TimeGrid::kSlotsPerDay; ++s) {
    const double h = static_cast<double>(s) * TimeGrid::kSlotMinutes / 60.0;
    weekday_table_[s] = weekday_.value(h) * peak_bytes_;
    weekend_table_[s] = weekend_.value(h) * weekend_scale_ * peak_bytes_;
  }
}

double TrafficProfile::rate(std::size_t slot) const {
  const int sod = TimeGrid::slot_of_day(slot);
  return TimeGrid::is_weekday(slot) ? weekday_table_[sod]
                                    : weekend_table_[sod];
}

std::vector<double> TrafficProfile::series() const {
  std::vector<double> out(TimeGrid::kSlots);
  for (std::size_t s = 0; s < TimeGrid::kSlots; ++s) out[s] = rate(s);
  return out;
}

std::vector<double> TrafficProfile::weekday_day() const {
  return weekday_table_;
}

std::vector<double> TrafficProfile::weekend_day() const {
  return weekend_table_;
}

namespace {

TrafficProfile make_resident() {
  DayShape wd;
  wd.bumps = {{8.0, 0.15, 1.2}, {12.0, 0.42, 1.4}, {21.5, 1.0, 2.4}};
  wd.floor = 0.160;
  DayShape we;
  we.bumps = {{9.5, 0.17, 1.6}, {12.5, 0.47, 1.5}, {21.5, 1.0, 2.4}};
  we.floor = 0.156;
  // Table 4: resident peak 7.77e8 weekday / 7.99e8 weekend; ratio ~8.9.
  return TrafficProfile(wd, we, 7.99e8 / 7.77e8, 7.77e8);
}

TrafficProfile make_transport() {
  DayShape wd;
  wd.bumps = {{8.0, 1.0, 1.3}, {18.5, 1.0, 1.35}};
  wd.floor = 0.0107;
  DayShape we;
  we.bumps = {{10.5, 0.60, 1.9}, {18.0, 1.0, 1.9}};
  we.floor = 0.0124;
  // Table 4: peak 2.76e8 wd / 1.55e8 we; ratio ~133 wd.
  return TrafficProfile(wd, we, 1.55e8 / 2.76e8, 2.76e8);
}

TrafficProfile make_office() {
  DayShape wd;
  wd.bumps = {{11.0, 1.0, 2.2}, {15.0, 0.62, 2.0}};
  wd.floor = 0.0621;
  DayShape we;
  we.bumps = {{12.5, 1.0, 2.8}};
  we.floor = 0.0894;
  // Table 4: peak 4.69e8 wd / 2.78e8 we; ratios 23 / 16; Fig 10 total 1.79.
  return TrafficProfile(wd, we, 2.78e8 / 4.69e8, 4.69e8);
}

TrafficProfile make_entertainment() {
  DayShape wd;
  wd.bumps = {{12.5, 0.50, 1.5}, {18.0, 1.0, 2.0}, {21.0, 0.70, 1.8}};
  wd.floor = 0.0443;
  DayShape we;
  we.bumps = {{12.5, 1.0, 2.5}, {18.5, 0.85, 2.2}};
  we.floor = 0.0414;
  // Table 4: peak 4.55e8 wd / 4.90e8 we; ratios ~32 / ~35.
  return TrafficProfile(wd, we, 4.90e8 / 4.55e8, 4.55e8);
}

}  // namespace

const std::vector<TrafficProfile>& pure_profiles() {
  static const std::vector<TrafficProfile> kProfiles = {
      make_resident(), make_transport(), make_office(), make_entertainment()};
  return kProfiles;
}

std::vector<double> TrafficProfile::mix_series(
    const std::vector<const TrafficProfile*>& profiles,
    const std::vector<double>& weights) {
  CS_CHECK_MSG(profiles.size() == weights.size() && !profiles.empty(),
               "mix_series requires matching non-empty inputs");
  std::vector<double> out(TimeGrid::kSlots, 0.0);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    CS_CHECK_MSG(profiles[i] != nullptr, "null profile");
    for (std::size_t s = 0; s < TimeGrid::kSlots; ++s)
      out[s] += weights[i] * profiles[i]->rate(s);
  }
  return out;
}

TrafficProfile TrafficProfile::canonical(FunctionalRegion r) {
  switch (r) {
    case FunctionalRegion::kResident: return make_resident();
    case FunctionalRegion::kTransport: return make_transport();
    case FunctionalRegion::kOffice: return make_office();
    case FunctionalRegion::kEntertainment: return make_entertainment();
    case FunctionalRegion::kComprehensive: {
      // Weighted mixture of the pure profiles per Table 1 (the paper finds
      // comprehensive traffic ≈ city average, Fig. 11). Expressed back as
      // a TrafficProfile by mixing the day shapes through sampled tables.
      const auto mix = table1_region_mix();
      double pure_sum = 0.0;
      for (int i = 0; i < 4; ++i) pure_sum += mix[i];
      // Build day shapes numerically: sample each pure profile's day
      // tables, combine, and re-fit as a dense bump list (one bump per
      // slot would be wasteful; instead store combined tables via a
      // DayShape with a fine bump comb is overkill — so construct from
      // combined tables directly using the private constructor path).
      // Simpler and exact: make a profile whose day shapes are single
      // wide bumps but whose tables we overwrite is not possible through
      // the public API; instead approximate the mixture with bumps from
      // each pure profile, scaled by mixture weight and relative peaks.
      const auto& pure = pure_profiles();
      double peak = 0.0;
      // Combine weekday tables to find the mixture's peak magnitude.
      std::vector<double> wd_table(TimeGrid::kSlotsPerDay, 0.0);
      std::vector<double> we_table(TimeGrid::kSlotsPerDay, 0.0);
      for (int i = 0; i < 4; ++i) {
        const auto wd = pure[i].weekday_day();
        const auto we = pure[i].weekend_day();
        for (int s = 0; s < TimeGrid::kSlotsPerDay; ++s) {
          wd_table[s] += mix[i] / pure_sum * wd[s];
          we_table[s] += mix[i] / pure_sum * we[s];
        }
      }
      double wd_peak = 0.0;
      double we_peak = 0.0;
      for (int s = 0; s < TimeGrid::kSlotsPerDay; ++s) {
        wd_peak = std::max(wd_peak, wd_table[s]);
        we_peak = std::max(we_peak, we_table[s]);
      }
      // Keep the mixture's *shape* but pin the absolute peak to the
      // published cluster aggregate (Table 4: comprehensive 7.36e8).
      peak = 7.36e8;
      // Express the combined tables as DayShapes: a dense comb of narrow
      // bumps reproducing the table exactly at slot centers.
      auto to_shape = [&](const std::vector<double>& table,
                          double table_peak) {
        DayShape shape;
        shape.floor = 0.0;
        shape.dip_depth = 0.0;
        shape.bumps.reserve(table.size());
        for (int s = 0; s < TimeGrid::kSlotsPerDay; ++s) {
          const double h =
              static_cast<double>(s) * TimeGrid::kSlotMinutes / 60.0;
          // Narrow bumps (sigma ≈ 0.04 h) act as interpolation kernels.
          shape.bumps.push_back({h, table[s] / table_peak, 0.042});
        }
        return shape;
      };
      return TrafficProfile(to_shape(wd_table, wd_peak),
                            to_shape(we_table, we_peak), we_peak / wd_peak,
                            peak);
    }
  }
  throw InvalidArgument("unknown FunctionalRegion");
}

}  // namespace cellscope
