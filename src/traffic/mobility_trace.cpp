#include "traffic/mobility_trace.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace cellscope {

double activity_level(double hour_of_day) {
  CS_CHECK_MSG(hour_of_day >= 0.0 && hour_of_day < 24.0, "hour out of range");
  // Two-bump activity: midday and evening, deep night minimum.
  auto bump = [&](double center, double sigma) {
    double d = std::fabs(hour_of_day - center);
    d = std::min(d, 24.0 - d);
    return std::exp(-d * d / (2.0 * sigma * sigma));
  };
  return 0.06 + 0.94 * std::min(1.0, bump(13.0, 3.5) + 0.9 * bump(20.5, 2.5));
}

std::vector<TrafficLog> generate_mobility_trace(
    const std::vector<Tower>& towers, const MobilityModel& mobility,
    const MobilityTraceOptions& options) {
  CS_CHECK_MSG(!towers.empty(), "need towers");
  CS_CHECK_MSG(options.peak_sessions_per_hour > 0.0,
               "session rate must be positive");
  CS_CHECK_MSG(options.day_begin >= 0 &&
                   options.day_begin < options.day_end &&
                   options.day_end <= TimeGrid::kDays,
               "day window must satisfy 0 <= begin < end <= 28");
  for (std::size_t i = 0; i < towers.size(); ++i)
    CS_CHECK_MSG(towers[i].id == i,
                 "mobility trace requires dense tower ids (deploy_towers)");

  Rng rng(options.seed);
  std::vector<TrafficLog> logs;

  const auto slot_begin = static_cast<std::size_t>(options.day_begin) *
                          TimeGrid::kSlotsPerDay;
  const auto slot_end =
      static_cast<std::size_t>(options.day_end) * TimeGrid::kSlotsPerDay;

  for (const auto& user : mobility.users()) {
    Rng user_rng = rng.fork();
    // Weekend outing decision per weekend day, cached per user.
    for (std::size_t slot = slot_begin; slot < slot_end; ++slot) {
      const double rate = options.peak_sessions_per_hour / 6.0 *
                          activity_level(TimeGrid::hour_of_day(slot));
      const auto n_sessions = user_rng.poisson(rate);
      if (n_sessions == 0) continue;
      std::uint32_t tower_id = mobility.tower_at(user, slot);
      // Unemployed / homebody weekends: the mobility model reports the
      // leisure place for everyone; emulate the outing probability by
      // keeping some users home (deterministic per user+day).
      if (mobility.place_at(user, slot) == UserPlace::kLeisure) {
        Rng outing_rng(user.user_id * 31 +
                       static_cast<std::uint64_t>(TimeGrid::day(slot)));
        if (outing_rng.uniform() >= 0.6) tower_id = user.home_tower;
      }
      CS_CHECK_MSG(tower_id < towers.size(), "tower id out of range");
      for (std::int64_t s = 0; s < n_sessions; ++s) {
        TrafficLog log;
        log.user_id = user.user_id;
        log.tower_id = tower_id;
        log.address = towers[tower_id].address;
        log.start_minute =
            static_cast<std::uint32_t>(slot) * TimeGrid::kSlotMinutes +
            static_cast<std::uint32_t>(
                user_rng.uniform_int(0, TimeGrid::kSlotMinutes - 1));
        log.end_minute =
            log.start_minute + 1 +
            static_cast<std::uint32_t>(user_rng.exponential(1.0 / 6.0));
        log.bytes = static_cast<std::uint64_t>(std::max(
            1.0, user_rng.lognormal(options.bytes_mu, options.bytes_sigma)));
        logs.push_back(std::move(log));
      }
    }
  }

  std::sort(logs.begin(), logs.end(),
            [](const TrafficLog& a, const TrafficLog& b) {
              if (a.start_minute != b.start_minute)
                return a.start_minute < b.start_minute;
              return a.user_id < b.user_id;
            });
  return logs;
}

}  // namespace cellscope
