#include "traffic/trace_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.h"

namespace cellscope {

TraceResult generate_trace(const std::vector<Tower>& towers,
                           const IntensityModel& intensity,
                           const TraceOptions& options) {
  CS_CHECK_MSG(!towers.empty(), "need at least one tower");
  CS_CHECK_MSG(towers.size() == intensity.size(),
               "towers and intensity model must match");
  CS_CHECK_MSG(options.n_users > 0, "need at least one user");
  CS_CHECK_MSG(options.mean_session_bytes > 0.0,
               "mean_session_bytes must be positive");
  CS_CHECK_MSG(options.mean_session_minutes > 0.0,
               "mean_session_minutes must be positive");
  CS_CHECK_MSG(options.duplicate_prob >= 0.0 && options.duplicate_prob <= 1.0,
               "duplicate_prob must be a probability");
  CS_CHECK_MSG(options.conflict_prob >= 0.0 && options.conflict_prob <= 1.0,
               "conflict_prob must be a probability");
  CS_CHECK_MSG(
      options.day_begin >= 0 && options.day_begin < options.day_end &&
          options.day_end <= TimeGrid::kDays,
      "day window must satisfy 0 <= day_begin < day_end <= 28");

  Rng rng(options.seed);
  TraceResult result;
  result.clean_bytes.assign(towers.size(),
                            std::vector<double>(TimeGrid::kSlots, 0.0));

  const auto slot_begin = static_cast<std::size_t>(options.day_begin) *
                          TimeGrid::kSlotsPerDay;
  const auto slot_end =
      static_cast<std::size_t>(options.day_end) * TimeGrid::kSlotsPerDay;
  const std::uint32_t grid_end_minute =
      static_cast<std::uint32_t>(TimeGrid::kSlots) * TimeGrid::kSlotMinutes;

  // Heavy-tailed user sampling: square a uniform so a few ids dominate,
  // like real subscriber usage distributions.
  auto draw_user = [&]() {
    const double u = rng.uniform();
    return static_cast<std::uint64_t>(
        u * u * static_cast<double>(options.n_users));
  };

  // A device opens at most one connection per minute per tower, so the
  // (user, tower, start-minute) triple identifies a connection — the key
  // the cleaner deduplicates on. Track used keys per tower to avoid
  // accidental collisions between legitimate sessions.
  std::unordered_set<std::uint64_t> used_keys;

  for (const auto& tower : towers) {
    Rng tower_rng = rng.fork();
    used_keys.clear();
    const auto expected = intensity.sample_series(tower.id, tower_rng);
    for (std::size_t slot = slot_begin; slot < slot_end; ++slot) {
      const double slot_bytes = expected[slot];
      if (slot_bytes <= 0.0) continue;
      const double mean_sessions = slot_bytes / options.mean_session_bytes;
      const auto n_sessions = tower_rng.poisson(mean_sessions);
      if (n_sessions == 0) continue;
      // Split the slot's bytes over its sessions with Dirichlet(1) shares
      // so the slot total stays calibrated to the intensity model.
      std::vector<double> shares =
          n_sessions == 1
              ? std::vector<double>{1.0}
              : tower_rng.dirichlet(std::vector<double>(
                    static_cast<std::size_t>(n_sessions), 1.0));
      for (std::int64_t s = 0; s < n_sessions; ++s) {
        TrafficLog log;
        log.tower_id = tower.id;
        log.address = tower.address;
        // Draw a (user, start-minute) pair not used at this tower yet;
        // give up after a few attempts (the slot is then saturated).
        bool found_key = false;
        for (int attempt = 0; attempt < 16 && !found_key; ++attempt) {
          log.user_id = draw_user();
          const auto offset = static_cast<std::uint32_t>(
              tower_rng.uniform_int(0, TimeGrid::kSlotMinutes - 1));
          log.start_minute =
              static_cast<std::uint32_t>(slot) * TimeGrid::kSlotMinutes +
              offset;
          const std::uint64_t key =
              (log.user_id << 16) | log.start_minute;
          found_key = used_keys.insert(key).second;
        }
        if (!found_key) continue;  // saturated slot; skip this session
        const double duration =
            tower_rng.exponential(1.0 / options.mean_session_minutes);
        log.end_minute = std::min(
            grid_end_minute,
            log.start_minute + 1 +
                static_cast<std::uint32_t>(std::min(duration, 1e4)));
        log.bytes = static_cast<std::uint64_t>(
            std::max(1.0, slot_bytes * shares[static_cast<std::size_t>(s)]));

        result.clean_bytes[tower.id][slot] += static_cast<double>(log.bytes);
        result.logs.push_back(log);

        // Inject data-quality defects the cleaner must remove.
        if (tower_rng.uniform() < options.duplicate_prob) {
          result.logs.push_back(result.logs.back());
          ++result.duplicates_injected;
        }
        if (tower_rng.uniform() < options.conflict_prob) {
          TrafficLog conflict = log;
          // A re-logged connection with a stale, smaller byte count and a
          // different end time; the cleaner keeps the larger record.
          conflict.bytes = std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(
                     static_cast<double>(log.bytes) *
                     tower_rng.uniform(0.2, 0.8)));
          conflict.end_minute = log.start_minute + 1;
          result.logs.push_back(std::move(conflict));
          ++result.conflicts_injected;
        }
      }
    }
  }

  // Shuffle so the pipeline cannot rely on ordering (real logs arrive
  // unordered across collection points).
  rng.shuffle(result.logs);
  return result;
}

}  // namespace cellscope
