// Session-level trace generation.
//
// The paper's raw input is a log of individual data connections; this
// generator emits that representation from the per-tower intensity model,
// including the data-quality defects the paper's preprocessing removes
// (§2.2): exact duplicate records and conflicting records (same connection
// logged twice with different byte counts).
#pragma once

#include <cstdint>
#include <vector>

#include "city/tower.h"
#include "traffic/intensity_model.h"
#include "traffic/trace_record.h"

namespace cellscope {

/// Trace generation knobs.
struct TraceOptions {
  std::uint64_t seed = 777;
  /// Subscriber population size (ids are drawn from a heavy-tailed usage
  /// distribution, mirroring the 150k-subscriber trace at reduced scale).
  std::size_t n_users = 5000;
  /// Mean bytes per session; controls how many sessions a slot's expected
  /// bytes decompose into.
  double mean_session_bytes = 2.0e5;
  /// Mean session duration in minutes (exponential).
  double mean_session_minutes = 8.0;
  /// Probability of emitting an exact duplicate of a record.
  double duplicate_prob = 0.02;
  /// Probability of emitting a conflicting copy (same user/tower/start,
  /// different bytes and end time).
  double conflict_prob = 0.01;
  /// Generate only days [day_begin, day_end) of the 28-day grid — session
  /// mode is detailed, so tests and benches often restrict the window.
  int day_begin = 0;
  int day_end = TimeGrid::kDays;
};

/// Generation output with some bookkeeping for validation.
struct TraceResult {
  std::vector<TrafficLog> logs;
  std::size_t duplicates_injected = 0;
  std::size_t conflicts_injected = 0;
  /// Ground-truth clean bytes per (tower, slot) — what a perfect pipeline
  /// should recover. Indexed [tower_id][slot].
  std::vector<std::vector<double>> clean_bytes;
};

/// Generates the session-level trace for all towers over the selected day
/// window. Deterministic in the seed.
TraceResult generate_trace(const std::vector<Tower>& towers,
                           const IntensityModel& intensity,
                           const TraceOptions& options);

}  // namespace cellscope
