// The raw trace record.
//
// Mirrors the fields the paper's ISP trace carries per entry (§2.1):
// anonymized device id, start/end time of the data connection, base-station
// id, base-station address, and bytes used in the connection.
#pragma once

#include <cstdint>
#include <string>

namespace cellscope {

/// One data-connection log entry. Times are minutes since the start of the
/// 4-week measurement grid.
///
/// Interval semantics: [start_minute, end_minute) — the start minute is
/// inside the connection, the end minute is not, and end_minute >=
/// start_minute always holds for well-formed records (trace_io rejects
/// violations). A zero-length connection (end == start) is valid and
/// carries its bytes like any other; binning attributes all bytes to the
/// 10-minute slot containing start_minute, so a connection crossing
/// midnight (or any slot boundary) still lands in exactly one slot.
struct TrafficLog {
  std::uint64_t user_id = 0;
  std::uint32_t tower_id = 0;
  std::uint32_t start_minute = 0;
  std::uint32_t end_minute = 0;  ///< exclusive end; >= start_minute
  std::uint64_t bytes = 0;
  std::string address;  ///< base-station street address (as logged)

  /// Connection length in minutes under the half-open convention:
  /// end_minute - start_minute (0 for a zero-length connection).
  std::uint32_t duration_minutes() const {
    return end_minute >= start_minute ? end_minute - start_minute : 0;
  }

  bool operator==(const TrafficLog& other) const = default;
};

}  // namespace cellscope
