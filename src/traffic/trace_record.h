// The raw trace record.
//
// Mirrors the fields the paper's ISP trace carries per entry (§2.1):
// anonymized device id, start/end time of the data connection, base-station
// id, base-station address, and bytes used in the connection.
#pragma once

#include <cstdint>
#include <string>

namespace cellscope {

/// One data-connection log entry. Times are minutes since the start of the
/// 4-week measurement grid.
struct TrafficLog {
  std::uint64_t user_id = 0;
  std::uint32_t tower_id = 0;
  std::uint32_t start_minute = 0;
  std::uint32_t end_minute = 0;  ///< inclusive-start, exclusive-end; >= start
  std::uint64_t bytes = 0;
  std::string address;  ///< base-station street address (as logged)

  bool operator==(const TrafficLog& other) const = default;
};

}  // namespace cellscope
