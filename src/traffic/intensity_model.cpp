#include "traffic/intensity_model.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace cellscope {

IntensityModel IntensityModel::create(const std::vector<Tower>& towers,
                                      const IntensityOptions& options) {
  CS_CHECK_MSG(!towers.empty(), "need at least one tower");
  CS_CHECK_MSG(options.purity_leak >= 0.0 && options.purity_leak < 1.0,
               "purity_leak must be in [0, 1)");
  Rng rng(options.seed);

  // Expected cluster sizes calibrate per-tower scale so that cluster
  // aggregates land near the published Table 4 magnitudes.
  std::array<std::size_t, kNumRegions> counts{};
  for (const auto& t : towers) ++counts[static_cast<int>(t.true_region)];

  std::array<double, kNumRegions> cluster_peak{};
  for (const FunctionalRegion r : all_regions())
    cluster_peak[static_cast<int>(r)] =
        TrafficProfile::canonical(r).peak_bytes();

  std::vector<TowerTrafficModel> models(towers.size());
  for (const auto& t : towers) {
    TowerTrafficModel m;
    const int region = static_cast<int>(t.true_region);

    if (t.true_region == FunctionalRegion::kComprehensive) {
      const auto alpha = std::vector<double>(
          options.comprehensive_alpha.begin(),
          options.comprehensive_alpha.end());
      const auto w = rng.dirichlet(alpha);
      for (int i = 0; i < 4; ++i) m.mixture[i] = w[i];
    } else {
      // Nearly pure: leak a little mass to the other profiles so pure
      // clusters have realistic within-cluster spread.
      const auto leak = rng.dirichlet({1.0, 1.0, 1.0});
      const double eps = options.purity_leak * rng.uniform();
      int j = 0;
      for (int i = 0; i < 4; ++i) {
        if (i == region) {
          m.mixture[i] = 1.0 - eps;
        } else {
          m.mixture[i] = eps * leak[j];
          ++j;
        }
      }
    }

    // Lognormal scale spread with mean 1, centered on the cluster share.
    const double sigma = options.scale_sigma;
    const double unit = rng.lognormal(-sigma * sigma / 2.0, sigma);
    const double denom = std::max<std::size_t>(1, counts[region]);
    m.scale = cluster_peak[region] / static_cast<double>(denom) * unit;
    m.noise_cv = options.noise_cv;
    models[t.id] = m;
  }
  return IntensityModel(std::move(models));
}

IntensityModel::IntensityModel(std::vector<TowerTrafficModel> models)
    : models_(std::move(models)) {
  unit_profiles_.reserve(4);
  for (const auto& p : pure_profiles()) {
    auto s = p.series();
    const double peak = max_value(s);
    for (auto& v : s) v /= peak;
    unit_profiles_.push_back(std::move(s));
  }
}

const TowerTrafficModel& IntensityModel::model(std::uint32_t tower_id) const {
  CS_CHECK_MSG(tower_id < models_.size(), "tower id out of range");
  return models_[tower_id];
}

std::vector<double> IntensityModel::expected_series(
    std::uint32_t tower_id) const {
  const auto& m = model(tower_id);
  std::vector<double> out(TimeGrid::kSlots, 0.0);
  for (int i = 0; i < 4; ++i) {
    if (m.mixture[i] == 0.0) continue;
    const auto& p = unit_profiles_[i];
    for (std::size_t s = 0; s < TimeGrid::kSlots; ++s)
      out[s] += m.mixture[i] * p[s];
  }
  for (auto& v : out) v *= m.scale;
  return out;
}

std::vector<double> IntensityModel::sample_series(std::uint32_t tower_id,
                                                  Rng& rng) const {
  auto out = expected_series(tower_id);
  const double cv = model(tower_id).noise_cv;
  if (cv <= 0.0) return out;
  // Multiplicative lognormal noise with mean 1 and the requested CV.
  const double sigma = std::sqrt(std::log(1.0 + cv * cv));
  const double mu = -sigma * sigma / 2.0;
  for (auto& v : out) v *= rng.lognormal(mu, sigma);
  return out;
}

std::vector<std::array<double, 4>> IntensityModel::mixtures() const {
  std::vector<std::array<double, 4>> out;
  out.reserve(models_.size());
  for (const auto& m : models_) out.push_back(m.mixture);
  return out;
}

}  // namespace cellscope
