#include "traffic/mobility.h"

#include <limits>

#include "common/error.h"
#include "geo/latlon.h"

namespace cellscope {

namespace {

/// Indices of towers with the given region (or all towers if none).
std::vector<std::size_t> towers_of(const std::vector<Tower>& towers,
                                   std::initializer_list<FunctionalRegion>
                                       regions) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < towers.size(); ++i)
    for (const auto r : regions)
      if (towers[i].true_region == r) {
        out.push_back(i);
        break;
      }
  if (out.empty()) {
    out.resize(towers.size());
    for (std::size_t i = 0; i < towers.size(); ++i) out[i] = i;
  }
  return out;
}

std::size_t pick(const std::vector<std::size_t>& pool, Rng& rng) {
  return pool[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
}

}  // namespace

MobilityModel MobilityModel::create(const std::vector<Tower>& towers,
                                    const MobilityOptions& options) {
  CS_CHECK_MSG(!towers.empty(), "need towers");
  CS_CHECK_MSG(options.n_users > 0, "need users");
  CS_CHECK_MSG(options.employment_rate >= 0.0 &&
                   options.employment_rate <= 1.0,
               "employment rate must be a probability");
  Rng rng(options.seed);

  const auto homes = towers_of(
      towers, {FunctionalRegion::kResident, FunctionalRegion::kComprehensive});
  const auto offices = towers_of(
      towers, {FunctionalRegion::kOffice, FunctionalRegion::kComprehensive});
  const auto stations = towers_of(towers, {FunctionalRegion::kTransport});
  const auto venues =
      towers_of(towers, {FunctionalRegion::kEntertainment,
                         FunctionalRegion::kComprehensive});

  std::vector<UserProfile> users;
  users.reserve(options.n_users);
  for (std::size_t u = 0; u < options.n_users; ++u) {
    UserProfile profile;
    profile.user_id = u;
    profile.home_tower =
        static_cast<std::uint32_t>(towers[pick(homes, rng)].id);
    profile.employed = rng.uniform() < options.employment_rate;
    profile.work_tower =
        static_cast<std::uint32_t>(towers[pick(offices, rng)].id);
    profile.leisure_tower =
        static_cast<std::uint32_t>(towers[pick(venues, rng)].id);

    // Transit stop: the transport tower nearest the home-work midpoint.
    const auto& home_pos = towers[profile.home_tower].position;
    const auto& work_pos = towers[profile.work_tower].position;
    const LatLon midpoint{(home_pos.lat + work_pos.lat) / 2.0,
                          (home_pos.lon + work_pos.lon) / 2.0};
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_station = stations.front();
    for (const auto s : stations) {
      const double d = haversine_m(towers[s].position, midpoint);
      if (d < best) {
        best = d;
        best_station = s;
      }
    }
    profile.transit_tower = static_cast<std::uint32_t>(towers[best_station].id);

    profile.commute_out_h = rng.uniform(7.0, 9.0);
    profile.commute_back_h = rng.uniform(17.0, 19.0);
    profile.transit_minutes = rng.uniform(20.0, 60.0);
    users.push_back(profile);
  }
  return MobilityModel(std::move(users));
}

MobilityModel::MobilityModel(std::vector<UserProfile> users)
    : users_(std::move(users)) {}

UserPlace MobilityModel::place_at(const UserProfile& user,
                                  std::size_t slot) const {
  const double h = TimeGrid::hour_of_day(slot);
  if (!TimeGrid::is_weekday(slot)) {
    // Weekend: a leisure outing window; the model is deterministic per
    // user (the generator decides stochastically whether to emit traffic
    // there).
    if (h >= 12.0 && h < 18.0) return UserPlace::kLeisure;
    return UserPlace::kHome;
  }
  if (!user.employed) return UserPlace::kHome;

  const double transit_h = user.transit_minutes / 60.0;
  if (h < user.commute_out_h) return UserPlace::kHome;
  if (h < user.commute_out_h + transit_h) return UserPlace::kTransit;
  if (h < user.commute_back_h) return UserPlace::kWork;
  if (h < user.commute_back_h + transit_h) return UserPlace::kTransit;
  return UserPlace::kHome;
}

std::uint32_t MobilityModel::tower_at(const UserProfile& user,
                                      std::size_t slot) const {
  switch (place_at(user, slot)) {
    case UserPlace::kHome: return user.home_tower;
    case UserPlace::kTransit: return user.transit_tower;
    case UserPlace::kWork: return user.work_tower;
    case UserPlace::kLeisure: return user.leisure_tower;
  }
  throw Error("unreachable place");
}

}  // namespace cellscope
