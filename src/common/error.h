// Error handling primitives for cellscope.
//
// All invariant violations and invalid arguments throw cellscope::Error
// (per the project rule: no undefined behaviour on bad input, exceptions
// for errors only).
#pragma once

#include <stdexcept>
#include <string>

namespace cellscope {

/// Base exception for all cellscope errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (file open/read/write).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_check(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  throw Error(std::string("check failed: ") + expr + " at " + file + ":" +
              std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace cellscope

/// Runtime invariant check; throws cellscope::Error when violated.
#define CS_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr))                                                      \
      ::cellscope::detail::fail_check(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// Runtime invariant check with an explanatory message.
#define CS_CHECK_MSG(expr, msg)                                          \
  do {                                                                   \
    if (!(expr))                                                         \
      ::cellscope::detail::fail_check(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Debug-only invariant checks for hot-path accessors (the condensed
/// distance-matrix indexers are read millions of times by the NN-chain
/// inner loop). Active in debug builds; compiled out under NDEBUG, where
/// the expression is only type-checked, never evaluated.
#ifndef NDEBUG
#define CS_DCHECK(expr) CS_CHECK(expr)
#define CS_DCHECK_MSG(expr, msg) CS_CHECK_MSG(expr, msg)
#else
#define CS_DCHECK(expr) \
  do {                  \
    (void)sizeof(expr); \
  } while (false)
#define CS_DCHECK_MSG(expr, msg) \
  do {                           \
    (void)sizeof(expr);          \
    (void)sizeof(msg);           \
  } while (false)
#endif
