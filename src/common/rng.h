// Deterministic pseudo-random number generation.
//
// Every stochastic component of cellscope takes an explicit seed so that
// experiments are reproducible bit-for-bit across runs (DESIGN.md §5.1).
// The generator is splitmix64-seeded xoshiro256**, a small, fast, high
// quality PRNG; distributions are implemented locally so results do not
// depend on the standard library implementation.
#pragma once

#include <cstdint>
#include <vector>

namespace cellscope {

/// Deterministic random number generator with the distributions used
/// throughout the synthetic city and traffic generators.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached spare value).
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (> 0).
  double exponential(double rate);

  /// Poisson with the given mean (>= 0); Knuth for small means,
  /// normal approximation for large ones.
  std::int64_t poisson(double mean);

  /// Gamma(shape, scale) via Marsaglia-Tsang; shape > 0, scale > 0.
  double gamma(double shape, double scale);

  /// Dirichlet sample with the given concentration parameters (all > 0).
  std::vector<double> dirichlet(const std::vector<double>& alpha);

  /// Index sampled from unnormalized non-negative weights (sum > 0).
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel determinism).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace cellscope
