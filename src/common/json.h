// Minimal JSON document model and recursive-descent parser.
//
// Just enough JSON to read back what the obs layer writes (metric
// snapshots, run reports, BENCH_*.json perf reports): null, bool, double
// numbers, strings with the standard escapes (incl. \uXXXX -> UTF-8),
// arrays, and objects. Parsing a malformed document throws
// InvalidArgument with the byte offset; accessor kind mismatches throw
// too, so callers fail loudly instead of reading garbage.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace cellscope {

/// One parsed JSON value.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  explicit JsonValue(bool v) : value_(v) {}
  explicit JsonValue(double v) : value_(v) {}
  explicit JsonValue(std::string v) : value_(std::move(v)) {}
  explicit JsonValue(Array v) : value_(std::move(v)) {}
  explicit JsonValue(Object v) : value_(std::move(v)) {}

  /// Parses a complete document (trailing garbage is an error).
  static JsonValue parse(std::string_view text);

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member access; throws InvalidArgument when not an object or
  /// the key is absent.
  const JsonValue& at(std::string_view key) const;
  bool contains(std::string_view key) const;

  /// at(key).as_number(), or `fallback` when the key is absent.
  double number_or(std::string_view key, double fallback) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace cellscope
