#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "simd/simd.h"

namespace cellscope {

double mean(std::span<const double> v) {
  CS_CHECK_MSG(!v.empty(), "mean of empty vector");
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  CS_CHECK_MSG(!v.empty(), "variance of empty vector");
  const double m = mean(v);
  double s = 0.0;
  for (const double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double min_value(std::span<const double> v) {
  CS_CHECK_MSG(!v.empty(), "min of empty vector");
  return *std::min_element(v.begin(), v.end());
}

double max_value(std::span<const double> v) {
  CS_CHECK_MSG(!v.empty(), "max of empty vector");
  return *std::max_element(v.begin(), v.end());
}

std::size_t argmin(std::span<const double> v) {
  CS_CHECK_MSG(!v.empty(), "argmin of empty vector");
  return static_cast<std::size_t>(
      std::min_element(v.begin(), v.end()) - v.begin());
}

std::size_t argmax(std::span<const double> v) {
  CS_CHECK_MSG(!v.empty(), "argmax of empty vector");
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

double sum(std::span<const double> v) {
  double s = 0.0;
  for (const double x : v) s += x;
  return s;
}

double quantile(std::span<const double> v, double q) {
  CS_CHECK_MSG(!v.empty(), "quantile of empty vector");
  CS_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  CS_CHECK_MSG(a.size() == b.size() && !a.empty(),
               "pearson requires equal non-empty vectors");
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  CS_CHECK_MSG(saa > 0.0 && sbb > 0.0, "pearson of constant vector");
  return sab / std::sqrt(saa * sbb);
}

std::vector<double> zscore(std::span<const double> v) {
  CS_CHECK_MSG(!v.empty(), "zscore of empty vector");
  const double m = mean(v);
  const double sd = stddev(v);
  std::vector<double> out(v.size());
  if (sd == 0.0) return out;  // constant vector -> all zeros
  simd::normalize(v.data(), v.size(), m, sd, out.data());
  return out;
}

std::vector<double> minmax(std::span<const double> v) {
  CS_CHECK_MSG(!v.empty(), "minmax of empty vector");
  const double lo = min_value(v);
  const double hi = max_value(v);
  std::vector<double> out(v.size());
  if (hi == lo) return out;  // constant vector -> all zeros
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = (v[i] - lo) / (hi - lo);
  return out;
}

std::vector<double> max_normalize(std::span<const double> v) {
  CS_CHECK_MSG(!v.empty(), "max_normalize of empty vector");
  const double hi = max_value(v);
  std::vector<double> out(v.size());
  if (hi <= 0.0) return out;
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] / hi;
  return out;
}

std::vector<std::pair<double, double>> empirical_cdf(std::span<const double> v,
                                                     std::size_t n_points) {
  CS_CHECK_MSG(!v.empty(), "empirical_cdf of empty vector");
  CS_CHECK_MSG(n_points >= 2, "empirical_cdf requires n_points >= 2");
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted.front();
  const double hi = sorted.back();
  std::vector<std::pair<double, double>> out;
  out.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n_points - 1);
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    const double f = static_cast<double>(it - sorted.begin()) /
                     static_cast<double>(sorted.size());
    out.emplace_back(x, f);
  }
  return out;
}

std::vector<double> circular_moving_average(std::span<const double> v,
                                            std::size_t half_window) {
  CS_CHECK_MSG(!v.empty(), "moving average of empty vector");
  const auto n = v.size();
  std::vector<double> out(n);
  const auto w = static_cast<std::ptrdiff_t>(half_window);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::ptrdiff_t d = -w; d <= w; ++d) {
      const auto j = (static_cast<std::ptrdiff_t>(i + n) + d) %
                     static_cast<std::ptrdiff_t>(n);
      s += v[static_cast<std::size_t>(j)];
    }
    out[i] = s / static_cast<double>(2 * w + 1);
  }
  return out;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  CS_CHECK_MSG(a.size() == b.size(), "distance of unequal vectors");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double euclidean_distance(std::span<const double> a,
                          std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

}  // namespace cellscope
