// CRC-32 (IEEE 802.3, the zlib/gzip polynomial) for file framing.
//
// The stream snapshot frame (stream/snapshot.h) trails its payload with
// this checksum so torn writes and bit rot are detected before a restore
// mutates anything. Table-driven, one byte per step — plenty for
// checkpoint-sized buffers; chain calls via the `seed` parameter to
// checksum discontiguous spans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cellscope {

/// CRC-32 of `n` bytes at `data`. Pass a previous result as `seed` to
/// continue a running checksum; the default seed starts a fresh one.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// CRC-32 of a contiguous byte string.
inline std::uint32_t crc32(std::string_view data) {
  return crc32(data.data(), data.size());
}

}  // namespace cellscope
