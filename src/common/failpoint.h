// Failpoints: deterministic fault injection for crash-safety tests.
//
// A failpoint is a named site in production code — `if
// (CS_FAILPOINT("snapshot.rename.fail")) ...` — that normally evaluates
// to false. Tests (or an operator reproducing a failure) arm a site with
// a charge count; each evaluation of an armed site consumes one charge
// and returns true, letting the code path simulate the corresponding
// fault (a short write, a failed rename, a rejected pool submit) without
// mocking the I/O layer. Charges make ordering deterministic: "fail the
// first rename, succeed after" is arm("snapshot.rename.fail", 1).
//
// Arming is programmatic (fp::arm / fp::arm_from_spec) or env-driven: the
// CELLSCOPE_FAILPOINTS variable ("name=count,name=count", count -1 =
// every hit) is read once, on first registry access. Malformed env
// entries are skipped with a note on stderr — an operator typo must not
// abort the process during static init.
//
// The whole subsystem compiles to `false` (zero code at the sites)
// unless CELLSCOPE_FAILPOINTS_ENABLED is defined; the CMake option
// CELLSCOPE_FAILPOINTS (default ON) controls that definition, so
// hardened production builds can strip every site with -D
// CELLSCOPE_FAILPOINTS=OFF. Armed-or-not evaluation is one mutex-guarded
// map lookup — every wired site (snapshot framing, trace file I/O,
// thread-pool admission) is already far colder than that.
#pragma once

#include <cstdint>
#include <string_view>

namespace cellscope::fp {

/// Arms `name` with `charges` firings; each fire() consumes one.
/// charges < 0 fires on every hit until disarmed; charges == 0 disarms.
void arm(std::string_view name, int charges = 1);

/// Disarms `name` (no-op when not armed). Hit counts are kept.
void disarm(std::string_view name);

/// Disarms every failpoint and zeroes all hit counts (test teardown).
void disarm_all();

/// Parses and arms a "name=count[,name=count...]" spec — the
/// CELLSCOPE_FAILPOINTS grammar. Throws InvalidArgument on a malformed
/// entry (programmatic callers want loud failures; the env loader
/// catches and skips).
void arm_from_spec(std::string_view spec);

/// Times an armed `name` actually fired since the last disarm_all().
std::uint64_t fire_count(std::string_view name);

/// Evaluation core behind CS_FAILPOINT: true when `name` is armed and a
/// charge is consumed. Reads CELLSCOPE_FAILPOINTS on first call.
bool fire(std::string_view name);

}  // namespace cellscope::fp

/// True when the named failpoint is armed (consuming one charge); false —
/// with zero generated code — when failpoints are compiled out.
#ifdef CELLSCOPE_FAILPOINTS_ENABLED
#define CS_FAILPOINT(name) (::cellscope::fp::fire(name))
#else
#define CS_FAILPOINT(name) (false)
#endif
