#include "common/time_grid.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace cellscope {

int TimeGrid::day(std::size_t slot) {
  CS_CHECK_MSG(slot < kSlots, "slot out of range");
  return static_cast<int>(slot) / kSlotsPerDay;
}

int TimeGrid::day_of_week(std::size_t slot) { return day(slot) % kDaysPerWeek; }

bool TimeGrid::is_weekday(std::size_t slot) { return day_of_week(slot) < 5; }

int TimeGrid::slot_of_day(std::size_t slot) {
  CS_CHECK_MSG(slot < kSlots, "slot out of range");
  return static_cast<int>(slot) % kSlotsPerDay;
}

int TimeGrid::slot_of_week(std::size_t slot) {
  CS_CHECK_MSG(slot < kSlots, "slot out of range");
  return static_cast<int>(slot) % kSlotsPerWeek;
}

double TimeGrid::hour_of_day(std::size_t slot) {
  return static_cast<double>(slot_of_day(slot)) * kSlotMinutes / 60.0;
}

std::size_t TimeGrid::slot_at(int day, int hour, int minute) {
  CS_CHECK_MSG(day >= 0 && day < kDays, "day out of range");
  CS_CHECK_MSG(hour >= 0 && hour < 24, "hour out of range");
  CS_CHECK_MSG(minute >= 0 && minute < 60 && minute % kSlotMinutes == 0,
               "minute must be a non-negative multiple of 10 below 60");
  return static_cast<std::size_t>(day) * kSlotsPerDay +
         static_cast<std::size_t>(hour) * kSlotsPerHour +
         static_cast<std::size_t>(minute) / kSlotMinutes;
}

std::string TimeGrid::format_time_of_day(int slot_of_day) {
  CS_CHECK_MSG(slot_of_day >= 0 && slot_of_day < kSlotsPerDay,
               "slot-of-day out of range");
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%02d:%02d", slot_of_day / kSlotsPerHour,
                (slot_of_day % kSlotsPerHour) * kSlotMinutes);
  return buf;
}

std::string TimeGrid::format_hour(double hour) {
  CS_CHECK_MSG(hour >= 0.0 && hour < 24.0, "hour out of range");
  const int slot =
      static_cast<int>(std::lround(hour * kSlotsPerHour)) % kSlotsPerDay;
  return format_time_of_day(slot);
}

std::vector<std::size_t> TimeGrid::weekday_slots() {
  std::vector<std::size_t> out;
  out.reserve(kSlots * 5 / 7);
  for (std::size_t s = 0; s < kSlots; ++s)
    if (is_weekday(s)) out.push_back(s);
  return out;
}

std::vector<std::size_t> TimeGrid::weekend_slots() {
  std::vector<std::size_t> out;
  out.reserve(kSlots * 2 / 7);
  for (std::size_t s = 0; s < kSlots; ++s)
    if (!is_weekday(s)) out.push_back(s);
  return out;
}

}  // namespace cellscope
