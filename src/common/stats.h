// Descriptive statistics and vector normalizations.
//
// The paper's vectorizer z-scores every tower's traffic vector (§3.2) and
// the POI validation min-max normalizes POI counts (§3.3.2); both live here
// together with the summary statistics used by the analysis module.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cellscope {

/// Arithmetic mean. Requires a non-empty input.
double mean(std::span<const double> v);

/// Population variance (divides by N). Requires a non-empty input.
double variance(std::span<const double> v);

/// Population standard deviation.
double stddev(std::span<const double> v);

/// Smallest element. Requires a non-empty input.
double min_value(std::span<const double> v);

/// Largest element. Requires a non-empty input.
double max_value(std::span<const double> v);

/// Index of the smallest element (first on ties).
std::size_t argmin(std::span<const double> v);

/// Index of the largest element (first on ties).
std::size_t argmax(std::span<const double> v);

/// Sum of all elements (0 for empty input).
double sum(std::span<const double> v);

/// Linear-interpolated quantile, q in [0, 1]. Requires non-empty input.
double quantile(std::span<const double> v, double q);

/// Pearson correlation coefficient; inputs must have equal, non-zero length
/// and non-zero variance.
double pearson(std::span<const double> a, std::span<const double> b);

/// Z-score normalization: (x - mean) / stddev. A constant vector maps to
/// all zeros (the paper's towers always carry some traffic, but synthetic
/// edge cases must not divide by zero).
std::vector<double> zscore(std::span<const double> v);

/// Min-max normalization onto [0, 1]. A constant vector maps to all zeros.
std::vector<double> minmax(std::span<const double> v);

/// Normalization by the maximum (used by the paper's Fig. 3/4/5 plots).
/// A non-positive maximum maps to all zeros.
std::vector<double> max_normalize(std::span<const double> v);

/// Empirical CDF evaluated at n_points evenly spaced between min and max.
/// Returns (x, F(x)) pairs. Requires non-empty input and n_points >= 2.
std::vector<std::pair<double, double>> empirical_cdf(std::span<const double> v,
                                                     std::size_t n_points);

/// Centered moving average with the given half-window, treating the series
/// as circular (appropriate for periodic daily profiles).
std::vector<double> circular_moving_average(std::span<const double> v,
                                            std::size_t half_window);

/// Euclidean distance between equal-length vectors.
double euclidean_distance(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance between equal-length vectors.
double squared_distance(std::span<const double> a, std::span<const double> b);

}  // namespace cellscope
