// Aligned text tables for bench binaries that regenerate the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace cellscope {

/// Builds monospace tables with a header row, column alignment and an
/// optional title, then renders them as a string.
class TextTable {
 public:
  explicit TextTable(std::string title = "");

  /// Sets the header row (fixes the column count).
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count if set.
  void add_row(std::vector<std::string> row);

  /// Renders with box-drawing separators.
  std::string render() const;

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cellscope
