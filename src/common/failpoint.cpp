#include "common/failpoint.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

#include "common/error.h"
#include "common/string_util.h"

namespace cellscope::fp {

namespace {

struct Entry {
  int charges = 0;  ///< firings left; < 0 = unlimited
  std::uint64_t fired = 0;
};

class Registry {
 public:
  static Registry& instance() {
    static Registry* registry = new Registry;  // never destroyed
    return *registry;
  }

  void arm(std::string_view name, int charges) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[std::string(name)].charges = charges;
  }

  void disarm(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) it->second.charges = 0;
  }

  void disarm_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

  std::uint64_t fire_count(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.fired;
  }

  bool fire(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end() || it->second.charges == 0) return false;
    if (it->second.charges > 0) --it->second.charges;
    ++it->second.fired;
    return true;
  }

 private:
  Registry() {
    // Env-driven arming happens exactly once, here; a typo in an
    // operator-supplied spec is reported and skipped, never fatal.
    const char* spec = std::getenv("CELLSCOPE_FAILPOINTS");
    if (spec == nullptr || *spec == '\0') return;
    try {
      arm_from_spec_locked(spec);
    } catch (const InvalidArgument& e) {
      std::fprintf(stderr, "cellscope: ignoring CELLSCOPE_FAILPOINTS: %s\n",
                   e.what());
    }
  }

  void arm_from_spec_locked(std::string_view spec) {
    for (const auto& part : split(spec, ',')) {
      const std::string entry = trim(part);
      if (entry.empty()) continue;
      const auto eq = entry.find('=');
      if (eq == std::string::npos || eq == 0)
        throw InvalidArgument("failpoint spec entry needs name=count: '" +
                              entry + "'");
      const std::string name = trim(entry.substr(0, eq));
      const std::string count = trim(entry.substr(eq + 1));
      // from_chars instead of strtol: strtol saturates overflow to
      // LONG_MAX (then the int cast mangled it further), silently arming
      // a different charge count than the operator wrote. Out-of-range
      // is a malformed entry like any other: reported and skipped.
      int charges = 0;
      const char* begin = count.c_str();
      const char* end = begin + count.size();
      const auto [ptr, ec] = std::from_chars(begin, end, charges);
      if (count.empty() || ec != std::errc() || ptr != end)
        throw InvalidArgument("failpoint spec count must fit an int: '" +
                              entry + "'");
      entries_[name].charges = charges;
    }
  }

  friend void cellscope::fp::arm_from_spec(std::string_view);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace

void arm(std::string_view name, int charges) {
  Registry::instance().arm(name, charges);
}

void disarm(std::string_view name) { Registry::instance().disarm(name); }

void disarm_all() { Registry::instance().disarm_all(); }

void arm_from_spec(std::string_view spec) {
  auto& registry = Registry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex_);
  registry.arm_from_spec_locked(spec);
}

std::uint64_t fire_count(std::string_view name) {
  return Registry::instance().fire_count(name);
}

bool fire(std::string_view name) { return Registry::instance().fire(name); }

}  // namespace cellscope::fp
