#include "common/table.h"

#include <algorithm>

#include "common/error.h"

namespace cellscope {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) {
  CS_CHECK_MSG(!header.empty(), "header must not be empty");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  CS_CHECK_MSG(header_.empty() || row.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  if (cols == 0) return title_.empty() ? std::string() : title_ + "\n";

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto rule = [&]() {
    std::string s = "+";
    for (std::size_t i = 0; i < cols; ++i)
      s += std::string(width[i] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& r) {
    std::string s = "|";
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string cell = i < r.size() ? r[i] : std::string();
      s += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  if (!header_.empty()) {
    out += line(header_);
    out += rule();
  }
  for (const auto& r : rows_) out += line(r);
  out += rule();
  return out;
}

}  // namespace cellscope
