#include "common/json.h"

#include <cstdlib>

#include "common/error.h"

namespace cellscope {

namespace {

/// Appends one Unicode code point as UTF-8.
void append_utf8(std::string& out, unsigned int cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("json parse error at offset " +
                          std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() const {
    if (pos_ >= text_.size())
      throw InvalidArgument("json parse error at offset " +
                            std::to_string(pos_) +
                            ": unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(object));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(array));
    }
  }

  JsonValue parse_number() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("invalid number");
    pos_ += static_cast<std::size_t>(end - begin);
    return JsonValue(value);
  }

  unsigned int parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned int value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned int>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned int>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned int>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned int cp = parse_hex4();
          // Surrogate pair: a high half must be followed by a low half
          // (and a low half must never stand alone).
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (text_.substr(pos_, 2) != "\\u") fail("lone high surrogate");
            pos_ += 2;
            const unsigned int low = parse_hex4();
            if (low >= 0xDC00 && low <= 0xDFFF)
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            else
              fail("invalid low surrogate");
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (!is_bool()) throw InvalidArgument("json value is not a bool");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  if (!is_number()) throw InvalidArgument("json value is not a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw InvalidArgument("json value is not a string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) throw InvalidArgument("json value is not an array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) throw InvalidArgument("json value is not an object");
  return std::get<Object>(value_);
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const auto& object = as_object();
  const auto it = object.find(std::string(key));
  if (it == object.end())
    throw InvalidArgument("json object has no key: " + std::string(key));
  return it->second;
}

bool JsonValue::contains(std::string_view key) const {
  return is_object() &&
         as_object().find(std::string(key)) != as_object().end();
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  if (!contains(key)) return fallback;
  return at(key).as_number();
}

}  // namespace cellscope
