// LEB128 varints and zigzag transforms for the columnar trace format.
//
// The binary trace (traffic/columnar.h) stores its time columns as
// zigzag-delta varints: a time-ordered trace has tiny deltas, so most
// values fit in one byte. Encoding appends to a std::string (the chunk
// payload under construction); decoding reads from a bounds-checked
// [cursor, end) byte range and never walks past `end` — a truncated or
// bit-flipped payload yields a clean failure, not UB, which is what the
// corrupt-chunk skip-and-count contract relies on.
//
// Header-only: every call site is a hot ingest/encode loop and these
// compile to a handful of instructions.
#pragma once

#include <cstdint>
#include <string>

namespace cellscope {

/// Appends `value` to `out` as an unsigned LEB128 varint (7 bits per
/// byte, high bit = continuation; 1..10 bytes).
inline void varint_encode(std::uint64_t value, std::string& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

/// Decodes an unsigned LEB128 varint from [*cursor, end). On success
/// stores the value, advances *cursor past it, and returns true. Returns
/// false — leaving *cursor unspecified — when the buffer ends inside the
/// varint or the encoding exceeds 10 bytes (64 payload bits).
inline bool varint_decode(const unsigned char** cursor,
                          const unsigned char* end, std::uint64_t& value) {
  const unsigned char* p = *cursor;
  // Single-byte fast path: the overwhelmingly common case for the delta
  // columns (small deltas) and for byte counts under 128.
  if (p < end && *p < 0x80) {
    value = *p;
    *cursor = p + 1;
    return true;
  }
  std::uint64_t out = 0;
  for (unsigned shift = 0; shift < 64 && p < end; shift += 7) {
    const std::uint64_t byte = *p++;
    out |= (byte & 0x7f) << shift;
    if (byte < 0x80) {
      value = out;
      *cursor = p;
      return true;
    }
  }
  return false;
}

/// Zigzag: maps signed deltas to small unsigned values (0, -1, 1, -2 →
/// 0, 1, 2, 3) so varint_encode stores either direction compactly.
inline std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

}  // namespace cellscope
