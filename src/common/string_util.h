// Small string helpers shared by CSV/trace parsing and table rendering.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cellscope {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string trim(std::string_view s);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Joins elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Fixed-precision decimal formatting (no locale surprises).
std::string format_double(double v, int precision);

/// Formats a byte count as a human-readable quantity ("1.25 GB").
std::string format_bytes(double bytes);

}  // namespace cellscope
