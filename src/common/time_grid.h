// The measurement time grid used throughout the paper.
//
// The paper aggregates one month of logs into 10-minute slots and trims the
// month to exactly four whole weeks, so every traffic vector has
// N = 28 * 144 = 4032 entries. The trace starts on a Monday (the paper's
// weekly plots start Mon Aug 4 2014). This header centralizes all slot
// arithmetic: slot <-> (day, hour, minute), weekday/weekend masks, and
// pretty-printing of times.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cellscope {

/// Grid constants (paper §3.2: N = 4032).
struct TimeGrid {
  static constexpr int kSlotMinutes = 10;
  static constexpr int kSlotsPerHour = 60 / kSlotMinutes;        // 6
  static constexpr int kSlotsPerDay = 24 * kSlotsPerHour;        // 144
  static constexpr int kDaysPerWeek = 7;
  static constexpr int kWeeks = 4;
  static constexpr int kDays = kWeeks * kDaysPerWeek;            // 28
  static constexpr int kSlotsPerWeek = kDaysPerWeek * kSlotsPerDay;  // 1008
  static constexpr std::size_t kSlots =
      static_cast<std::size_t>(kDays) * kSlotsPerDay;            // 4032

  /// Day index (0..27) of a slot. Day 0 is a Monday.
  static int day(std::size_t slot);

  /// Day-of-week (0 = Monday .. 6 = Sunday).
  static int day_of_week(std::size_t slot);

  /// True for Monday..Friday slots.
  static bool is_weekday(std::size_t slot);

  /// Slot index within its day (0..143).
  static int slot_of_day(std::size_t slot);

  /// Slot index within its week (0..1007).
  static int slot_of_week(std::size_t slot);

  /// Hour-of-day as a real number in [0, 24), e.g. 21.5 for 21:30.
  static double hour_of_day(std::size_t slot);

  /// Absolute slot from (day, hour, minute). Minute must be a multiple of 10.
  static std::size_t slot_at(int day, int hour, int minute);

  /// Formats the slot-of-day as "HH:MM".
  static std::string format_time_of_day(int slot_of_day);

  /// Formats an hour-of-day value (e.g. 21.5) as "HH:MM", rounded to 10 min.
  static std::string format_hour(double hour);

  /// Indices of all weekday slots (Mon-Fri) in [0, kSlots).
  static std::vector<std::size_t> weekday_slots();

  /// Indices of all weekend slots (Sat-Sun) in [0, kSlots).
  static std::vector<std::size_t> weekend_slots();
};

}  // namespace cellscope
