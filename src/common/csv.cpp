#include "common/csv.h"

#include "common/error.h"
#include "common/string_util.h"

namespace cellscope {

CsvWriter::CsvWriter(const std::string& path) : out_(path), path_(path) {
  if (!out_) throw IoError("cannot open for writing: " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  if (!out_) throw IoError("write failed: " + path_);
}

void CsvWriter::write_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) formatted.push_back(format_double(v, precision));
  write_row(formatted);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

std::vector<std::vector<std::string>> CsvReader::read_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    rows.push_back(parse_line(line));
  }
  return rows;
}

std::vector<std::string> CsvReader::parse_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  cells.push_back(cur);
  return cells;
}

bool CsvReader::split_unquoted(std::string_view line,
                               std::vector<std::string_view>& cells) {
  cells.clear();
  if (line.find('"') != std::string_view::npos) return false;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t comma = line.find(',', begin);
    if (comma == std::string_view::npos) {
      cells.push_back(line.substr(begin));
      return true;
    }
    cells.push_back(line.substr(begin, comma - begin));
    begin = comma + 1;
  }
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace cellscope
