// Minimal CSV reading/writing for trace files and figure exports.
//
// Fields containing the delimiter, quotes or newlines are quoted per RFC
// 4180. The reader handles quoted fields and escaped quotes; it does not
// support embedded newlines inside quoted fields (none of our files use
// them).
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace cellscope {

/// Streams rows to a CSV file; throws IoError on failure.
class CsvWriter {
 public:
  /// Opens (truncates) the file.
  explicit CsvWriter(const std::string& path);

  /// Writes one row of already-formatted cells.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: writes a row of doubles at the given precision.
  void write_row(const std::vector<double>& cells, int precision = 6);

  /// Flushes and closes; called by the destructor as well.
  void close();

 private:
  std::ofstream out_;
  std::string path_;
};

/// Reads an entire CSV file into memory.
class CsvReader {
 public:
  /// Parses a file; throws IoError if it cannot be opened.
  static std::vector<std::vector<std::string>> read_file(
      const std::string& path);

  /// Parses a single CSV line.
  static std::vector<std::string> parse_line(const std::string& line);

  /// Zero-allocation tokenizer for the common case of a line with no
  /// quoted fields: splits `line` on commas into views over its bytes
  /// (valid only while `line`'s storage lives). Returns false — with
  /// `cells` unspecified — when the line contains a '"', in which case
  /// callers must fall back to parse_line. For quote-free lines the
  /// result matches parse_line cell for cell.
  static bool split_unquoted(std::string_view line,
                             std::vector<std::string_view>& cells);
};

/// Quotes a cell if needed per RFC 4180.
std::string csv_escape(const std::string& cell);

}  // namespace cellscope
