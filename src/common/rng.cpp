#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace cellscope {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 significant bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CS_CHECK_MSG(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CS_CHECK_MSG(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double sigma) {
  CS_CHECK_MSG(sigma >= 0.0, "normal() requires sigma >= 0");
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  CS_CHECK_MSG(rate > 0.0, "exponential() requires rate > 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) {
  CS_CHECK_MSG(mean >= 0.0, "poisson() requires mean >= 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for
  // synthetic traffic volumes.
  const double v = normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
}

double Rng::gamma(double shape, double scale) {
  CS_CHECK_MSG(shape > 0.0 && scale > 0.0,
               "gamma() requires shape > 0 and scale > 0");
  if (shape < 1.0) {
    // Boost to shape >= 1 (Marsaglia-Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

std::vector<double> Rng::dirichlet(const std::vector<double>& alpha) {
  CS_CHECK_MSG(!alpha.empty(), "dirichlet() requires at least one parameter");
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    CS_CHECK_MSG(alpha[i] > 0.0, "dirichlet() parameters must be > 0");
    out[i] = gamma(alpha[i], 1.0);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate draw (all gammas underflowed); fall back to uniform.
    const double w = 1.0 / static_cast<double>(out.size());
    for (auto& v : out) v = w;
    return out;
  }
  for (auto& v : out) v /= sum;
  return out;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  CS_CHECK_MSG(!weights.empty(), "categorical() requires weights");
  double total = 0.0;
  for (const double w : weights) {
    CS_CHECK_MSG(w >= 0.0, "categorical() weights must be non-negative");
    total += w;
  }
  CS_CHECK_MSG(total > 0.0, "categorical() weights must not all be zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: r landed exactly on total
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace cellscope
