#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace cellscope {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  double v = std::fabs(bytes);
  while (v >= 1000.0 && u < 5) {
    v /= 1000.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%.2f %s", bytes < 0 ? "-" : "", v,
                kUnits[u]);
  return buf;
}

}  // namespace cellscope
