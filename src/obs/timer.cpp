#include "obs/timer.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/quality.h"

namespace cellscope::obs {

namespace {

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

// Touch the start time as early as static init allows so ts values are
// close to true process-relative time.
[[maybe_unused]] const auto kStartAnchor = process_start();

std::uint64_t current_tid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xFFFF;
}

std::string format_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - process_start())
      .count();
}

double time_point_us(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration<double, std::micro>(tp - process_start())
      .count();
}

ScopedTimer::~ScopedTimer() {
  if (sink_) sink_->observe(elapsed_ms());
}

// Retention bound: a long-lived traced process (or a bench loop) must
// not grow span memory without limit. Past the cap, new spans are
// dropped and counted; clear() re-arms recording.
constexpr std::size_t kMaxTraceEvents = 131072;

struct StageTrace::State {
  mutable std::mutex mutex;
  std::vector<TraceEvent> events;
  std::unordered_map<std::uint64_t, std::size_t> open;  // token -> index
  std::uint64_t next_token = 1;
  std::uint64_t dropped = 0;
};

StageTrace::StageTrace() : state_(new State) {
  const char* env = std::getenv("CELLSCOPE_TRACE");
  if (env && *env) {
    exit_path_ = env;
    enabled_.store(true, std::memory_order_relaxed);
  }
}

StageTrace::~StageTrace() {
  if (!exit_path_.empty()) {
    try {
      write_chrome_trace(exit_path_);
    } catch (...) {
      // Exit-time trace dumps must never terminate the process.
    }
  }
  // state_ is intentionally leaked: spans closing from other static
  // destructors must not touch a destroyed mutex.
}

StageTrace& StageTrace::instance() {
  static StageTrace trace;
  return trace;
}

std::uint64_t StageTrace::begin(std::string_view name,
                                std::string_view category) {
  if (!enabled()) return 0;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ts_us = now_us();
  event.dur_us = -1.0;  // open
  event.tid = current_tid();
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->events.size() >= kMaxTraceEvents) {
    ++state_->dropped;
    return 0;  // token 0 makes the matching end() a no-op
  }
  const std::uint64_t token = state_->next_token++;
  state_->open.emplace(token, state_->events.size());
  state_->events.push_back(std::move(event));
  return token;
}

void StageTrace::record_complete(std::string_view name,
                                 std::string_view category, double ts_us,
                                 double dur_us, std::string args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ts_us = ts_us;
  event.dur_us = dur_us < 0.0 ? 0.0 : dur_us;
  event.tid = current_tid();
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->events.size() >= kMaxTraceEvents) {
    ++state_->dropped;
    return;
  }
  state_->events.push_back(std::move(event));
}

void StageTrace::end(std::uint64_t token) {
  if (token == 0) return;
  const double t = now_us();
  std::lock_guard<std::mutex> lock(state_->mutex);
  const auto it = state_->open.find(token);
  if (it == state_->open.end()) return;  // cleared mid-span
  auto& event = state_->events[it->second];
  event.dur_us = t - event.ts_us;
  state_->open.erase(it);
}

std::vector<TraceEvent> StageTrace::events() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  std::vector<TraceEvent> completed;
  completed.reserve(state_->events.size());
  for (const auto& e : state_->events)
    if (e.dur_us >= 0.0) completed.push_back(e);
  return completed;
}

void StageTrace::clear() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->events.clear();
  state_->open.clear();
  state_->dropped = 0;
}

std::uint64_t StageTrace::dropped() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->dropped;
}

std::string StageTrace::chrome_trace_json() const {
  const auto completed = events();
  std::string json = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : completed) {
    if (!first) json += ',';
    first = false;
    json += "{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
            json_escape(e.category) + "\",\"ph\":\"X\",\"ts\":" +
            format_us(e.ts_us) + ",\"dur\":" + format_us(e.dur_us) +
            ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    if (!e.args.empty()) json += ",\"args\":{" + e.args + '}';
    json += '}';
  }
  json += "],\"displayTimeUnit\":\"ms\"}";
  return json;
}

void StageTrace::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) throw IoError("cannot write trace: " + path);
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

StageSpan::StageSpan(std::string_view stage, std::string_view category,
                     LogLevel level)
    : stage_(stage),
      level_(level),
      token_(StageTrace::instance().begin(stage, category)),
      histogram_(&MetricsRegistry::instance().histogram(
          "cellscope." + std::string(category) + ".stage_ms")),
      start_(std::chrono::steady_clock::now()) {}

void StageSpan::annotate(LogField field) {
  fields_.push_back(std::move(field));
}

StageSpan::~StageSpan() {
  const double wall_ms = elapsed_ms();
  StageTrace::instance().end(token_);
  histogram_->observe(wall_ms);
  // Stage-boundary sentinels: run (and consume) every quality check
  // registered for this stage while its data was live (obs/quality.h).
  QualityBoard::instance().evaluate_stage(stage_);
  auto& logger = Logger::instance();
  if (logger.enabled(level_)) {
    std::vector<LogField> fields;
    fields.reserve(fields_.size() + 2);
    fields.emplace_back("stage", stage_);
    fields.emplace_back("wall_ms", wall_ms);
    for (auto& f : fields_) fields.push_back(std::move(f));
    logger.log(level_, "stage.done", fields);
  }
}

}  // namespace cellscope::obs
