// Leveled, thread-safe structured logging.
//
// Log lines are flat key=value records ("logfmt") written to stderr and,
// optionally, an append-mode file sink. The level is controlled at runtime
// by the CELLSCOPE_LOG environment variable ("trace".."error", "off";
// optionally ",file=PATH" to add a file sink) and at compile time by the
// CELLSCOPE_LOG_FLOOR macro, which lets release builds strip levels below
// the floor entirely. Disabled levels cost one relaxed atomic load.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace cellscope::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Lowest level compiled into the binary (numeric LogLevel value).
/// Calls below the floor are dead code the optimizer removes.
#ifndef CELLSCOPE_LOG_FLOOR
#define CELLSCOPE_LOG_FLOOR 0
#endif

/// "trace".."error" / "off"; throws InvalidArgument on anything else.
LogLevel parse_log_level(std::string_view text);

/// Canonical lowercase name of a level.
std::string_view log_level_name(LogLevel level);

/// One key=value field of a structured log line. Values are stored raw;
/// formatting quotes and escapes them as needed.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  LogField(std::string_view k, const std::string& v) : key(k), value(v) {}
  LogField(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false") {}
  LogField(std::string_view k, double v);
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  LogField(std::string_view k, T v) : key(k), value(std::to_string(v)) {}
};

/// Quotes and escapes a field value when it contains spaces, quotes, '=',
/// backslashes, control characters, or is empty; returns it verbatim
/// otherwise. Control characters without a short escape (\n, \r, \t)
/// are emitted as \u00XX so every byte round-trips through
/// unescape_log_value / parse_log_line.
std::string escape_log_value(std::string_view value);

/// Inverse of escape_log_value: strips surrounding quotes (when present)
/// and resolves \", \\, \n, \r, \t, and \u00XX escapes. Unquoted input
/// is returned verbatim.
std::string unescape_log_value(std::string_view escaped);

/// Parses one logfmt line back into its fields (ts/level/event included),
/// resolving quoting and escapes — the round-trip counterpart of
/// format_log_line, used by log-reading tools and the regression tests.
std::vector<LogField> parse_log_line(std::string_view line);

/// Formats one full log line (without trailing newline):
///   ts=<ISO8601.ms> level=<level> event=<event> k1=v1 k2="v 2"
std::string format_log_line(LogLevel level, std::string_view event,
                            const std::vector<LogField>& fields);

/// The process-wide logger.
class Logger {
 public:
  /// Singleton; first call reads CELLSCOPE_LOG.
  static Logger& instance();

  LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// True when a record at `level` would be emitted.
  bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= CELLSCOPE_LOG_FLOOR &&
           level >= this->level() && level != LogLevel::kOff;
  }

  /// Adds an append-mode file sink (throws IoError on open failure).
  void set_file(const std::string& path);
  void close_file();

  /// Enables/disables the stderr sink (on by default).
  void set_stderr(bool enabled);

  void log(LogLevel level, std::string_view event,
           const std::vector<LogField>& fields);
  void log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields = {}) {
    if (!enabled(level)) return;
    log(level, event, std::vector<LogField>(fields));
  }

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

 private:
  Logger();
  ~Logger();

  std::atomic<int> level_;
  std::atomic<bool> to_stderr_{true};
  struct Sink;
  Sink* sink_;  // mutex + optional FILE*, heap-held so it outlives races
};

/// Convenience wrappers over Logger::instance().
inline void log_event(LogLevel level, std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  Logger::instance().log(level, event, fields);
}
inline void log_trace(std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  log_event(LogLevel::kTrace, event, fields);
}
inline void log_debug(std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  log_event(LogLevel::kDebug, event, fields);
}
inline void log_info(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  log_event(LogLevel::kInfo, event, fields);
}
inline void log_warn(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  log_event(LogLevel::kWarn, event, fields);
}
inline void log_error(std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  log_event(LogLevel::kError, event, fields);
}

}  // namespace cellscope::obs
