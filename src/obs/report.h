// Per-run provenance reports — one JSON artifact per run.
//
// A RunReport aggregates everything the obs layer knows about a run into
// a single machine-readable document: build/git identity, the run's
// configuration, recorded stage spans, the full metrics snapshot (with
// p50/p90/p99 histogram percentiles), and every quality-sentinel verdict.
// Setting CELLSCOPE_RUN_REPORT=<path> makes Experiment::run and every
// perf_*/ext_* bench write one at process exit; BENCH_*.json perf reports
// share the same schema (see DESIGN.md §7 for the field list).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cellscope::obs {

/// Compile-time build identity baked in by CMake.
struct BuildInfo {
  std::string git_sha;     ///< configure-time `git rev-parse --short HEAD`
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string compiler;    ///< the compiler's __VERSION__ banner
};
BuildInfo build_info();

/// Path from CELLSCOPE_RUN_REPORT (read once per process; "" = disabled).
const std::string& run_report_path();

/// Builder for one report document. Collection (spans, metrics, quality)
/// happens when to_json() is called, so build the report last.
class RunReport {
 public:
  explicit RunReport(std::string name);

  /// Adds one key to the "config" object (last write per key wins).
  void add_config(std::string_view key, std::string_view value);
  void add_config(std::string_view key, const char* value) {
    add_config(key, std::string_view(value));
  }
  void add_config(std::string_view key, double value);
  void add_config(std::string_view key, bool value);
  void add_config(std::string_view key, std::uint64_t value);
  void add_config(std::string_view key, std::int64_t value);
  /// Adds a pre-rendered JSON token as the value (no quoting applied).
  void add_config_json(std::string_view key, std::string json_token);

  /// The full report document (one JSON object).
  std::string to_json() const;

  /// Writes to_json() + newline to `path`; throws IoError on failure.
  void write(const std::string& path) const;

 private:
  std::string name_;
  // Keys in insertion order; values are pre-rendered JSON tokens.
  std::vector<std::pair<std::string, std::string>> config_;
};

/// Arms the process-exit run report: remembers `name` (first caller
/// wins), merges `config` rows, enables stage-span recording, and — once —
/// registers an atexit hook that writes the report to run_report_path().
/// No-op (returns false) when CELLSCOPE_RUN_REPORT is unset.
bool arm_run_report(const std::string& name);
bool arm_run_report(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& config_json);

/// True when this process has armed a report.
bool run_report_armed();

}  // namespace cellscope::obs
