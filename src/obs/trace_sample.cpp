#include "obs/trace_sample.h"

#include <cstdlib>

namespace cellscope::obs {

TraceSampler::TraceSampler() {
  const char* env = std::getenv("CELLSCOPE_TRACE_SAMPLE");
  if (env == nullptr || *env == '\0') return;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(env, &end, 10);
  if (end != nullptr && *end == '\0' && parsed >= 1 &&
      parsed <= 0xFFFFFFFFUL)
    every_.store(static_cast<std::uint32_t>(parsed),
                 std::memory_order_relaxed);
}

TraceSampler& TraceSampler::instance() {
  static TraceSampler* sampler = new TraceSampler;  // never destroyed
  return *sampler;
}

}  // namespace cellscope::obs
