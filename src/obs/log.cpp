#include "obs/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <chrono>
#include <mutex>

#include "common/error.h"
#include "common/string_util.h"

namespace cellscope::obs {

namespace {

constexpr std::string_view kLevelNames[] = {"trace", "debug", "info",
                                            "warn",  "error", "off"};

bool needs_quoting(std::string_view value) {
  if (value.empty()) return true;
  for (const char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20)
      return true;
  }
  return false;
}

std::string timestamp_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto secs = system_clock::to_time_t(now);
  const auto ms =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  const std::size_t len = std::strftime(buf, sizeof(buf), "%FT%T", &tm);
  char out[48];
  std::snprintf(out, sizeof(out), "%.*s.%03dZ", static_cast<int>(len), buf,
                static_cast<int>(ms));
  return out;
}

}  // namespace

LogLevel parse_log_level(std::string_view text) {
  for (int i = 0; i <= static_cast<int>(LogLevel::kOff); ++i)
    if (text == kLevelNames[i]) return static_cast<LogLevel>(i);
  throw InvalidArgument("unknown log level: " + std::string(text));
}

std::string_view log_level_name(LogLevel level) {
  const int i = static_cast<int>(level);
  CS_CHECK_MSG(i >= 0 && i <= static_cast<int>(LogLevel::kOff),
               "log level out of range");
  return kLevelNames[i];
}

LogField::LogField(std::string_view k, double v) : key(k) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}

std::string escape_log_value(std::string_view value) {
  if (!needs_quoting(value)) return std::string(value);
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Remaining control characters must not reach the line raw: a
        // stray 0x01 (or an embedded NUL) would break line-oriented
        // logfmt consumers. \u00XX round-trips via unescape_log_value.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string unescape_log_value(std::string_view escaped) {
  // Unquoted values carry no escapes by construction.
  if (escaped.size() < 2 || escaped.front() != '"' || escaped.back() != '"')
    return std::string(escaped);
  const std::string_view body = escaped.substr(1, escaped.size() - 2);
  std::string out;
  out.reserve(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (body[i] != '\\' || i + 1 >= body.size()) {
      out.push_back(body[i]);
      continue;
    }
    const char next = body[++i];
    switch (next) {
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'u': {
        unsigned code = 0;
        if (i + 4 < body.size() &&
            std::sscanf(std::string(body.substr(i + 1, 4)).c_str(), "%4x",
                        &code) == 1) {
          out.push_back(static_cast<char>(code & 0xFF));
          i += 4;
        } else {
          out.push_back('u');
        }
        break;
      }
      default:
        out.push_back(next);  // \" and \\ and anything unknown
    }
  }
  return out;
}

std::vector<LogField> parse_log_line(std::string_view line) {
  std::vector<LogField> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) break;
    const std::size_t key_begin = i;
    while (i < line.size() && line[i] != '=' && line[i] != ' ') ++i;
    if (i >= line.size() || line[i] != '=') break;  // trailing bare token
    const std::string_view key = line.substr(key_begin, i - key_begin);
    ++i;  // consume '='
    std::size_t value_begin = i;
    std::string_view raw;
    if (i < line.size() && line[i] == '"') {
      ++i;  // opening quote
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          i += 2;
          continue;
        }
        if (line[i] == '"') break;
        ++i;
      }
      if (i < line.size()) ++i;  // closing quote
      raw = line.substr(value_begin, i - value_begin);
    } else {
      while (i < line.size() && line[i] != ' ') ++i;
      raw = line.substr(value_begin, i - value_begin);
    }
    fields.emplace_back(key, unescape_log_value(raw));
  }
  return fields;
}

std::string format_log_line(LogLevel level, std::string_view event,
                            const std::vector<LogField>& fields) {
  std::string line = "ts=" + timestamp_now();
  line += " level=";
  line += log_level_name(level);
  line += " event=";
  line += escape_log_value(event);
  for (const auto& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    line += escape_log_value(f.value);
  }
  return line;
}

struct Logger::Sink {
  std::mutex mutex;
  std::FILE* file = nullptr;
};

Logger::Logger() : level_(static_cast<int>(LogLevel::kWarn)),
                   sink_(new Sink) {
  // CELLSCOPE_LOG = <level>[,file=PATH]
  const char* env = std::getenv("CELLSCOPE_LOG");
  if (!env || !*env) return;
  for (const auto& part : split(env, ',')) {
    const auto token = trim(part);
    if (token.starts_with("file=")) {
      try {
        set_file(std::string(token.substr(5)));
      } catch (const Error&) {
        // An unopenable sink must not take the process down.
      }
    } else if (!token.empty()) {
      try {
        set_level(parse_log_level(token));
      } catch (const Error&) {
        // Unknown level: keep the default rather than crash at startup.
      }
    }
  }
}

Logger::~Logger() {
  close_file();
  // sink_ is intentionally leaked: log calls from other static destructors
  // must not touch a destroyed mutex.
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (!file) throw IoError("cannot open log sink: " + path);
  std::lock_guard<std::mutex> lock(sink_->mutex);
  if (sink_->file) std::fclose(sink_->file);
  sink_->file = file;
}

void Logger::close_file() {
  std::lock_guard<std::mutex> lock(sink_->mutex);
  if (sink_->file) {
    std::fclose(sink_->file);
    sink_->file = nullptr;
  }
}

void Logger::set_stderr(bool enabled) {
  to_stderr_.store(enabled, std::memory_order_relaxed);
}

void Logger::log(LogLevel level, std::string_view event,
                 const std::vector<LogField>& fields) {
  if (!enabled(level)) return;
  const std::string line = format_log_line(level, event, fields);
  std::lock_guard<std::mutex> lock(sink_->mutex);
  if (to_stderr_.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  if (sink_->file) {
    std::fprintf(sink_->file, "%s\n", line.c_str());
    std::fflush(sink_->file);
  }
}

}  // namespace cellscope::obs
