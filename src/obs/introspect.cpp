#include "obs/introspect.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/quality.h"

namespace cellscope::obs {

namespace {

constexpr int kPollIntervalMs = 100;  // stop() latency bound
constexpr std::size_t kMaxRequestBytes = 8192;

std::string status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// The /healthz body: quality-sentinel tallies plus every verdict.
HttpResponse healthz_response() {
  auto& board = QualityBoard::instance();
  const bool ok = board.ok();
  HttpResponse response;
  response.status = ok ? 200 : 503;
  response.content_type = "application/json";
  response.body = std::string("{\"ok\":") + (ok ? "true" : "false") +
                  ",\"passed\":" + std::to_string(board.passed()) +
                  ",\"warned\":" + std::to_string(board.warned()) +
                  ",\"failed\":" + std::to_string(board.failed()) +
                  ",\"verdicts\":" + board.verdicts_json() + "}";
  return response;
}

}  // namespace

IntrospectionServer::IntrospectionServer() {
  set_handler("/metrics", [] {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = MetricsRegistry::instance().snapshot_prometheus();
    return response;
  });
  set_handler("/metrics.json", [] {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = MetricsRegistry::instance().snapshot_json();
    return response;
  });
  set_handler("/healthz", [] { return healthz_response(); });
}

IntrospectionServer::~IntrospectionServer() { stop(); }

IntrospectionServer& IntrospectionServer::instance() {
  // Leaked like the other obs singletons: components deregistering
  // handlers from static destructors must find a live object.
  static IntrospectionServer* server = new IntrospectionServer;
  return *server;
}

bool IntrospectionServer::maybe_start_from_env() {
  auto& server = instance();
  if (server.running()) return true;
  const char* env = std::getenv("CELLSCOPE_INTROSPECT_PORT");
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(env, &end, 10);
  if (end == nullptr || *end != '\0' || parsed > 65535) {
    log_warn("introspect.bad_port", {{"value", env}});
    return false;
  }
  try {
    server.start(static_cast<std::uint16_t>(parsed));
  } catch (const Error& e) {
    // A stats port that cannot be bound must not take the process down.
    log_warn("introspect.start_failed", {{"error", e.what()}});
    return false;
  }
  return true;
}

void IntrospectionServer::set_handler(const std::string& path,
                                      Handler handler, const void* owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_[path] = Registration{std::move(handler), owner};
}

void IntrospectionServer::remove_handler(const std::string& path,
                                         const void* owner) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = handlers_.find(path);
    if (it == handlers_.end()) return;
    if (owner != nullptr && it->second.owner != owner) return;
    handlers_.erase(it);
  }
  // Drain any in-flight invocation: once we hold exec_mutex_, no handler
  // (including the one just erased) is still running, so the caller may
  // free whatever state its handler captured.
  std::lock_guard<std::mutex> exec_lock(exec_mutex_);
}

HttpResponse IntrospectionServer::handle(std::string_view path) const {
  // Strip any query string; endpoints are parameterless today.
  const auto query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);

  // exec_mutex_ is taken *before* the table lookup so remove_handler's
  // erase-then-drain sequence is airtight: once it returns, the erased
  // handler neither runs nor will run. mutex_ is only held for the
  // lookup itself; handlers run outside it and may take component locks.
  std::lock_guard<std::mutex> exec_lock(exec_mutex_);
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second.handler;
  }
  if (!handler) {
    HttpResponse response;
    response.status = 404;
    response.body = "no such endpoint: " + std::string(path) + '\n';
    return response;
  }
  try {
    return handler();
  } catch (const std::exception& e) {
    HttpResponse response;
    response.status = 500;
    response.body = std::string("handler error: ") + e.what() + '\n';
    return response;
  }
}

void IntrospectionServer::start(std::uint16_t port) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("introspect: socket() failed");
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("introspect: cannot listen on 127.0.0.1:" +
                  std::to_string(port) + " (" + std::strerror(err) + ")");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    ::close(fd);
    throw IoError("introspect: getsockname() failed");
  }

  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_relaxed);
  running_ = true;
  thread_ = std::thread([this] { serve_loop(); });
  log_info("introspect.listening", {{"port", port_}});
}

void IntrospectionServer::stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_.store(true, std::memory_order_relaxed);
    to_join = std::move(thread_);
    running_ = false;
  }
  if (to_join.joinable()) to_join.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
}

bool IntrospectionServer::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::uint16_t IntrospectionServer::port() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return port_;
}

void IntrospectionServer::serve_loop() {
  int fd;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fd = listen_fd_;
  }
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout (stop check) or transient error
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      // fd exhaustion, aborted handshakes — visible, not silent.
      MetricsRegistry::instance()
          .counter("cellscope.introspect.accept_errors")
          .add(1);
      continue;
    }
    serve_one(client);
    ::close(client);
  }
}

void IntrospectionServer::serve_one(int client_fd) const {
  // Read one request's head (we never need the body of a stats GET).
  std::string request;
  char buf[2048];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  // Malformed input gets a typed 400, never a silent close — a curl
  // fat-fingering the port should see why it was refused.
  const auto line_end = request.find('\n');
  HttpResponse response;
  if (line_end == std::string::npos) {
    if (request.empty()) return;  // hangup before any bytes: nothing to say
    response.status = 400;
    response.body = "malformed request line\n";
    write_response(client_fd, response);
    return;
  }

  // "GET /path HTTP/1.1"
  std::string_view line(request.data(), line_end);
  while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
    line.remove_suffix(1);
  const auto first_space = line.find(' ');
  const auto second_space =
      first_space == std::string_view::npos
          ? std::string_view::npos
          : line.find(' ', first_space + 1);
  if (first_space == std::string_view::npos || first_space == 0) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else if (line.substr(0, first_space) != "GET") {
    response.status = 405;
    response.body = "only GET is supported\n";
  } else {
    const auto path_end = second_space == std::string_view::npos
                              ? line.size()
                              : second_space;
    response =
        handle(line.substr(first_space + 1, path_end - first_space - 1));
  }
  write_response(client_fd, response);
}

void IntrospectionServer::write_response(int client_fd,
                                         const HttpResponse& response) {
  // Connection: close on every response: this server answers exactly one
  // request per connection, and says so.
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                     status_text(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  // Best-effort writes: a client hanging up mid-response is its problem.
  (void)::write(client_fd, head.data(), head.size());
  (void)::write(client_fd, response.body.data(), response.body.size());
}

}  // namespace cellscope::obs
