#include "obs/quality.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "common/error.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace cellscope::obs {

namespace {

/// Storage cap: a bench looping Experiment::run thousands of times must
/// not grow the verdict log without bound; the counts stay exact.
constexpr std::size_t kMaxStoredVerdicts = 1024;

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kFail:
      return "fail";
  }
  return "fail";
}

QualityBoard& QualityBoard::instance() {
  static QualityBoard* board = new QualityBoard;  // never destroyed
  return *board;
}

void QualityBoard::add_check(std::string_view stage, std::string_view name,
                             Severity severity, CheckFn fn) {
  CS_CHECK_MSG(static_cast<bool>(fn), "quality check needs a callable");
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.push_back(Pending{std::string(stage), std::string(name), severity,
                             std::move(fn)});
}

std::size_t QualityBoard::evaluate_stage(std::string_view stage) noexcept {
  // Pull the stage's checks out under the lock, run them outside it (a
  // check may legitimately touch the registry or log).
  std::vector<Pending> due;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->stage == stage) {
        due.push_back(std::move(*it));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& pending : due) {
    QualityVerdict verdict;
    verdict.check = std::move(pending.name);
    verdict.stage = std::move(pending.stage);
    verdict.severity = pending.severity;
    try {
      const CheckResult result = pending.fn();
      verdict.passed = result.passed;
      verdict.value = result.value;
      verdict.detail = result.detail;
    } catch (const std::exception& e) {
      verdict.passed = false;
      verdict.severity = Severity::kFail;
      verdict.detail = std::string("check threw: ") + e.what();
    } catch (...) {
      verdict.passed = false;
      verdict.severity = Severity::kFail;
      verdict.detail = "check threw a non-standard exception";
    }
    try {
      record(std::move(verdict));
    } catch (...) {
      // Recording must never propagate out of a destructor-driven
      // evaluation; the counters may be momentarily short.
    }
  }
  return due.size();
}

void QualityBoard::record(QualityVerdict verdict) {
  auto& registry = MetricsRegistry::instance();
  LogLevel level = LogLevel::kDebug;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (verdict.passed) {
      ++passed_;
    } else if (verdict.severity == Severity::kFail) {
      ++failed_;
      level = LogLevel::kError;
    } else {
      ++warned_;
      level = verdict.severity == Severity::kWarn ? LogLevel::kWarn
                                                  : LogLevel::kInfo;
    }
  }
  registry
      .counter(verdict.passed ? "cellscope.quality.checks_passed"
               : verdict.severity == Severity::kFail
                   ? "cellscope.quality.checks_failed"
                   : "cellscope.quality.checks_warned")
      .add(1);
  log_event(level, "quality.check",
            {{"check", verdict.check},
             {"stage", verdict.stage},
             {"severity", severity_name(verdict.severity)},
             {"passed", verdict.passed},
             {"value", verdict.value},
             {"detail", verdict.detail}});
  std::lock_guard<std::mutex> lock(mutex_);
  if (verdicts_.size() >= kMaxStoredVerdicts)
    ++dropped_;
  else
    verdicts_.push_back(std::move(verdict));
}

std::vector<QualityVerdict> QualityBoard::verdicts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return verdicts_;
}

std::size_t QualityBoard::pending_checks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::size_t QualityBoard::passed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return passed_;
}

std::size_t QualityBoard::warned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return warned_;
}

std::size_t QualityBoard::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

std::string QualityBoard::verdicts_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string json = "[";
  bool first = true;
  for (const auto& v : verdicts_) {
    if (!first) json += ',';
    first = false;
    json += "{\"check\":\"" + json_escape(v.check) + "\",\"stage\":\"" +
            json_escape(v.stage) + "\",\"severity\":\"" +
            std::string(severity_name(v.severity)) +
            "\",\"passed\":" + (v.passed ? "true" : "false") +
            ",\"value\":" +
            (std::isfinite(v.value) ? format_value(v.value) : "null") +
            ",\"detail\":\"" +
            json_escape(v.detail) + "\"}";
  }
  json += "]";
  return json;
}

void QualityBoard::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.clear();
  verdicts_.clear();
  dropped_ = 0;
  passed_ = warned_ = failed_ = 0;
}

// ---------------------------------------------------------------------------

CheckResult check_finite_rows(const std::vector<std::vector<double>>& rows) {
  std::size_t bad = 0;
  std::size_t first_row = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (const double v : rows[r]) {
      if (!std::isfinite(v)) {
        if (bad == 0) first_row = r;
        ++bad;
      }
    }
  }
  CheckResult result;
  result.passed = bad == 0;
  result.value = static_cast<double>(bad);
  result.detail =
      bad == 0 ? "all " + std::to_string(rows.size()) + " rows finite"
               : std::to_string(bad) + " non-finite values (first in row " +
                     std::to_string(first_row) + ")";
  return result;
}

CheckResult check_zscore_rows(const std::vector<std::vector<double>>& rows,
                              double tolerance) {
  double worst = 0.0;
  std::size_t worst_row = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.empty()) continue;
    double sum = 0.0;
    for (const double v : row) sum += v;
    const double mean = sum / static_cast<double>(row.size());
    double var = 0.0;
    for (const double v : row) var += (v - mean) * (v - mean);
    const double sd = std::sqrt(var / static_cast<double>(row.size()));
    double deviation = std::abs(mean);
    // A constant raw row z-scores to all zeros (sd 0); only non-degenerate
    // rows must sit at unit variance.
    if (sd != 0.0) deviation = std::max(deviation, std::abs(sd - 1.0));
    if (!std::isfinite(deviation))
      deviation = std::numeric_limits<double>::infinity();
    if (deviation > worst) {
      worst = deviation;
      worst_row = r;
    }
  }
  CheckResult result;
  result.passed = worst <= tolerance;
  result.value = worst;
  result.detail = "worst |mean| / |sd-1| deviation " + format_value(worst) +
                  " (row " + std::to_string(worst_row) + "), tolerance " +
                  format_value(tolerance);
  return result;
}

CheckResult check_min_population(const std::vector<int>& labels,
                                 std::size_t min_size) {
  std::map<int, std::size_t> population;
  for (const int label : labels) ++population[label];
  std::size_t smallest = labels.size();
  int smallest_label = -1;
  for (const auto& [label, count] : population) {
    if (count < smallest) {
      smallest = count;
      smallest_label = label;
    }
  }
  CheckResult result;
  result.passed = !population.empty() && smallest >= min_size;
  result.value = static_cast<double>(population.empty() ? 0 : smallest);
  result.detail =
      population.empty()
          ? "no labels"
          : "smallest cluster " + std::to_string(smallest_label) + " has " +
                std::to_string(smallest) + " members (floor " +
                std::to_string(min_size) + ")";
  return result;
}

CheckResult check_dbi(double dbi) {
  CheckResult result;
  result.passed = std::isfinite(dbi) && dbi > 0.0;
  result.value = dbi;
  result.detail = result.passed
                      ? "DBI " + format_value(dbi)
                      : "degenerate DBI " + format_value(dbi) +
                            " (expected finite and > 0)";
  return result;
}

CheckResult check_energy_fraction(double retained_fraction,
                                  double min_fraction) {
  CheckResult result;
  result.passed =
      std::isfinite(retained_fraction) && retained_fraction >= min_fraction;
  result.value = retained_fraction;
  result.detail = "principal components retain " +
                  format_value(retained_fraction * 100.0) +
                  "% of signal energy (floor " +
                  format_value(min_fraction * 100.0) + "%)";
  return result;
}

CheckResult check_simplex_weights(std::span<const double> weights,
                                  double tolerance) {
  double sum = 0.0;
  double worst = 0.0;
  for (const double w : weights) {
    sum += w;
    if (-w > worst) worst = -w;  // negativity violation
  }
  const double sum_violation =
      weights.empty() ? 1.0 : std::abs(sum - 1.0);
  worst = std::max(worst, sum_violation);
  if (!std::isfinite(worst)) worst = std::numeric_limits<double>::infinity();
  CheckResult result;
  result.passed = worst <= tolerance;
  result.value = worst;
  result.detail = "sum " + format_value(sum) + ", worst violation " +
                  format_value(worst) + ", tolerance " +
                  format_value(tolerance);
  return result;
}

CheckResult check_reject_ratio(std::size_t rejected, std::size_t total,
                               double max_fraction) {
  const double ratio =
      total == 0 ? 0.0
                 : static_cast<double>(rejected) / static_cast<double>(total);
  CheckResult result;
  result.passed = ratio <= max_fraction;
  result.value = ratio;
  result.detail = std::to_string(rejected) + " of " + std::to_string(total) +
                  " rejected (ratio " + format_value(ratio) + ", max " +
                  format_value(max_fraction) + ")";
  return result;
}

}  // namespace cellscope::obs
