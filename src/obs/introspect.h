// Embedded introspection server — live, queryable telemetry over a
// running process.
//
// The obs stack previously surfaced state only at process exit (run
// reports, bench JSON). The IntrospectionServer makes the same state
// observable *while the process runs*: a dependency-free HTTP/1.1
// server with a single accept-and-serve thread (stats endpoints are
// cheap; one connection at a time is plenty and keeps the code tiny).
// Built-in endpoints:
//
//   /metrics       Prometheus text exposition of the MetricsRegistry
//   /metrics.json  the registry's JSON snapshot
//   /healthz       QualityBoard verdicts; 200 when no check failed,
//                  503 otherwise — a liveness/readiness probe
//
// Components register further endpoints with set_handler() — the
// StreamIngestor mounts /stream (per-shard queue depth, drops,
// watermarks, lag). Handlers run on the server thread; they must be
// thread-safe against the instrumented process (everything built on
// MetricsRegistry/QualityBoard already is).
//
// Wire behavior: every response carries `Connection: close` (one request
// per connection, and says so), a malformed request line is answered
// with a typed 400 instead of a silent close, and accept() failures are
// counted on cellscope.introspect.accept_errors.
//
// Enable with CELLSCOPE_INTROSPECT_PORT=<port> (0 picks an ephemeral
// port, logged at startup); maybe_start_from_env() is called by the
// replay harness and the stream_replay CLI, or call start() directly.
// handle() dispatches a request path without any socket — the unit-test
// seam and the building block for ROADMAP item 1's query daemon.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace cellscope::obs {

/// One HTTP response. Handlers fill status/content_type/body; the
/// server adds the status line and framing headers.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal single-threaded HTTP/1.1 stats server.
class IntrospectionServer {
 public:
  using Handler = std::function<HttpResponse()>;

  /// The process-global instance (leaked, like every obs singleton, so
  /// exit-time handler deregistration stays safe).
  static IntrospectionServer& instance();

  /// Reads CELLSCOPE_INTROSPECT_PORT and starts the global instance when
  /// it names a port (idempotent; failures log a warning rather than
  /// throw). Returns whether the global server is running afterwards.
  static bool maybe_start_from_env();

  IntrospectionServer();
  ~IntrospectionServer();

  /// Registers (or replaces) the GET handler for an exact path. `owner`
  /// tags the registration so remove_handler can be scoped: a component
  /// deregistering in its destructor only removes the handler if it is
  /// still the one it installed (a later registrant wins).
  void set_handler(const std::string& path, Handler handler,
                   const void* owner = nullptr);

  /// Removes `path`'s handler. With a non-null `owner`, removes it only
  /// when the current registration carries that owner tag. Blocks until
  /// any in-flight invocation of a handler has finished, so a component
  /// may safely destroy itself right after deregistering. (Corollary:
  /// never call remove_handler from inside a handler.)
  void remove_handler(const std::string& path, const void* owner = nullptr);

  /// Dispatches one request path (query strings are ignored) through the
  /// handler table — the socket loop calls this, and tests can hit it
  /// without opening a port. Unknown paths get 404; a throwing handler
  /// gets 500 with the exception text.
  HttpResponse handle(std::string_view path) const;

  /// Binds 127.0.0.1:<port> (0 = ephemeral) and starts the accept loop
  /// thread. Throws IoError when the socket cannot be bound; calling
  /// start() on a running server is a no-op.
  void start(std::uint16_t port);

  /// Stops the accept loop and joins the thread. Safe when not running.
  void stop();

  bool running() const;

  /// The actually bound port (resolves port 0), 0 when not running.
  std::uint16_t port() const;

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

 private:
  void serve_loop();
  void serve_one(int client_fd) const;
  /// Frames and best-effort-writes one response (always Connection:
  /// close — this server answers one request per connection).
  static void write_response(int client_fd, const HttpResponse& response);

  mutable std::mutex mutex_;       // guards handlers_ and lifecycle fields
  mutable std::mutex exec_mutex_;  // held while a handler runs
  struct Registration {
    Handler handler;
    const void* owner = nullptr;
  };
  std::map<std::string, Registration, std::less<>> handlers_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool running_ = false;
};

}  // namespace cellscope::obs
