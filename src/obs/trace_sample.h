// Deterministic 1-in-N record sampling for per-record tracing.
//
// Stage spans (obs/timer.h) trace the pipeline at batch granularity; to
// reconstruct a *single record's* path (ingest → window-update →
// classify) without paying per-record tracing cost, a cheap hash of the
// record's identity decides — identically at every stage — whether the
// record is traced. CELLSCOPE_TRACE_SAMPLE=N enables sampling at 1-in-N
// (N=1 traces every record; unset or 0 disables). Because the decision
// is a pure function of record content, the same record samples the same
// way at offer, drain, and classify time with no state carried between
// stages — a trace context that costs one multiply-shift per check.
#pragma once

#include <atomic>
#include <cstdint>

namespace cellscope::obs {

/// splitmix64 finalizer — a fast, well-mixed 64-bit hash step. Public so
/// call sites can fold multiple fields before sampling.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Process-global sampling knob (CELLSCOPE_TRACE_SAMPLE).
class TraceSampler {
 public:
  /// Singleton; first call reads CELLSCOPE_TRACE_SAMPLE (a positive
  /// integer; anything else leaves sampling off).
  static TraceSampler& instance();

  /// 0 = sampling off; N >= 1 = trace one record in N.
  std::uint32_t sample_every() const noexcept {
    return every_.load(std::memory_order_relaxed);
  }
  void set_sample_every(std::uint32_t every) noexcept {
    every_.store(every, std::memory_order_relaxed);
  }

  bool active() const noexcept { return sample_every() != 0; }

  /// Whether the record with this (well-mixed) hash is traced. Callers
  /// must pass the same hash at every stage for the decision to stick.
  bool sampled(std::uint64_t hash) const noexcept {
    const std::uint32_t every = sample_every();
    return every != 0 && hash % every == 0;
  }

  TraceSampler(const TraceSampler&) = delete;
  TraceSampler& operator=(const TraceSampler&) = delete;

 private:
  TraceSampler();

  std::atomic<std::uint32_t> every_{0};
};

}  // namespace cellscope::obs
