// Data-quality sentinels — named invariant checks at stage boundaries.
//
// The pipeline's failure modes are silent: a NaN row, a degenerate
// cluster, or spectral energy leaking out of the paper's three components
// corrupts every downstream figure without crashing. A sentinel is a
// named invariant check with a severity, registered for a pipeline stage
// while the stage's data is live and evaluated (then consumed) when that
// stage's StageSpan closes. Every evaluation yields a QualityVerdict that
// feeds the cellscope.quality.* counters, one structured log line, and
// the run report (obs/report.h).
//
// The check helpers at the bottom are pure functions over plain vectors
// so this layer stays dependency-free; callers that need domain math
// (DFT energy, DBI) compute the scalar and wrap it in a closure.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cellscope::obs {

/// Escalation level of a *violated* check (a passing check always logs
/// at debug and only bumps the passed counter).
enum class Severity { kInfo = 0, kWarn = 1, kFail = 2 };

/// Canonical lowercase name ("info" / "warn" / "fail").
std::string_view severity_name(Severity severity);

/// Outcome of one invariant evaluation, before it is attributed to a
/// stage and severity.
struct CheckResult {
  bool passed = true;
  double value = 0.0;  ///< the measured quantity (deviation, count, ...)
  std::string detail;  ///< human-readable summary
};

/// One recorded sentinel outcome.
struct QualityVerdict {
  std::string check;   ///< invariant name, e.g. "matrix_finite"
  std::string stage;   ///< stage it guards, e.g. "pipeline.vectorize"
  Severity severity = Severity::kFail;
  bool passed = true;
  double value = 0.0;
  std::string detail;
};

/// Process-global sentinel registry and verdict log.
///
/// add_check() registers a closure for a stage; ~StageSpan calls
/// evaluate_stage(), which runs and *consumes* every check registered
/// for that stage (one-shot, so closures may capture references to
/// stage-local data). A check that throws records a failed verdict with
/// the exception text rather than propagating (evaluation runs inside
/// destructors).
class QualityBoard {
 public:
  /// Singleton; intentionally leaked so spans closing during static
  /// destruction stay safe (same rule as MetricsRegistry).
  static QualityBoard& instance();

  using CheckFn = std::function<CheckResult()>;

  /// Registers `fn` to run when `stage`'s span closes. `severity` is the
  /// escalation applied if the check fails.
  void add_check(std::string_view stage, std::string_view name,
                 Severity severity, CheckFn fn);

  /// Runs and consumes every check registered for `stage`; returns the
  /// number evaluated. Safe to call from destructors.
  std::size_t evaluate_stage(std::string_view stage) noexcept;

  /// Records an already-evaluated verdict directly (for call sites that
  /// check per-item rather than per-stage, e.g. the convex decomposer).
  void record(QualityVerdict verdict);

  std::vector<QualityVerdict> verdicts() const;
  std::size_t pending_checks() const;
  std::size_t passed() const;
  std::size_t warned() const;  ///< violated at info/warn severity
  std::size_t failed() const;  ///< violated at fail severity
  bool ok() const { return failed() == 0; }

  /// JSON array of every stored verdict (insertion order).
  std::string verdicts_json() const;

  /// Drops all pending checks and stored verdicts (tests, run isolation).
  void clear();

  QualityBoard(const QualityBoard&) = delete;
  QualityBoard& operator=(const QualityBoard&) = delete;

 private:
  QualityBoard() = default;

  struct Pending {
    std::string stage;
    std::string name;
    Severity severity;
    CheckFn fn;
  };

  mutable std::mutex mutex_;
  std::vector<Pending> pending_;
  std::vector<QualityVerdict> verdicts_;
  std::size_t dropped_ = 0;  // verdicts beyond the storage cap
  std::size_t passed_ = 0;
  std::size_t warned_ = 0;
  std::size_t failed_ = 0;
};

// ---------------------------------------------------------------------------
// Invariant helpers. Each returns passed/value/detail; the caller picks
// stage and severity when registering.

/// Every element of every row is finite (no NaN/inf). value = number of
/// non-finite elements found.
CheckResult check_finite_rows(const std::vector<std::vector<double>>& rows);

/// Every row is z-score normalized: |mean| <= tolerance and
/// |stddev - 1| <= tolerance (constant rows, which z-score to all-zero,
/// are exempt from the stddev bound). value = worst deviation seen.
CheckResult check_zscore_rows(const std::vector<std::vector<double>>& rows,
                              double tolerance = 1e-6);

/// The smallest cluster in `labels` has at least `min_size` members.
/// value = smallest population.
CheckResult check_min_population(const std::vector<int>& labels,
                                 std::size_t min_size);

/// A Davies-Bouldin index is sane: finite and strictly positive.
/// value = the index.
CheckResult check_dbi(double dbi);

/// At least `min_fraction` of signal energy survives the principal-
/// component reconstruction (the paper's <6 % loss claim, §5.1).
/// `retained_fraction` is computed by the caller; value echoes it.
CheckResult check_energy_fraction(double retained_fraction,
                                  double min_fraction = 0.94);

/// Convex-combination weights lie on the probability simplex:
/// sum == 1 within `tolerance`, every weight >= -tolerance.
/// value = worst constraint violation.
CheckResult check_simplex_weights(std::span<const double> weights,
                                  double tolerance = 1e-6);

/// At most `max_fraction` of `total` items were rejected (malformed trace
/// lines, dropped stream records, ...). A zero total passes trivially.
/// value = the reject ratio.
CheckResult check_reject_ratio(std::size_t rejected, std::size_t total,
                               double max_fraction = 0.01);

}  // namespace cellscope::obs
