#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace cellscope::obs {

namespace {

/// CAS-adds a double stored bit-packed in a uint64 atomic (portable
/// substitute for std::atomic<double>::fetch_add).
void atomic_add_double(std::atomic<std::uint64_t>& bits, double delta) noexcept {
  std::uint64_t seen = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double current = std::bit_cast<double>(seen);
    const std::uint64_t next = std::bit_cast<std::uint64_t>(current + delta);
    if (bits.compare_exchange_weak(seen, next, std::memory_order_relaxed))
      return;
  }
}

/// JSON has no literal for NaN or infinity — a bare `nan` token makes
/// the whole /metrics.json document unparseable. Non-finite values
/// serialize as null, matching the serving plane's json_double.
std::string format_json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Prometheus exposition text, by contrast, spells non-finite values out.
std::string format_prom_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  CS_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  CS_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                       bounds_.end(),
               "histogram bounds must be strictly ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_bits_, value);
}

void Histogram::observe_n(double value, std::uint64_t n) noexcept {
  if (n == 0) return;
  merge_bucket(bucket_of(value), n, value * static_cast<double>(n));
}

std::size_t Histogram::bucket_of(double value) const noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::merge_bucket(std::size_t bucket, std::uint64_t n,
                             double value_sum) noexcept {
  if (n == 0 || bucket > bounds_.size()) return;
  buckets_[bucket].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  atomic_add_double(sum_bits_, value_sum);
}

double Histogram::sum() const noexcept {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::mean() const noexcept {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  return counts;
}

double Histogram::quantile(double q) const {
  CS_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile needs q in [0, 1]");
  const auto counts = bucket_counts();  // one consistent snapshot
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto below = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double lower = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
      const double fraction =
          (rank - static_cast<double>(below)) / static_cast<double>(counts[i]);
      return lower + (bounds_[i] - lower) * std::clamp(fraction, 0.0, 1.0);
    }
  }
  // Rank lands in the overflow bucket: no upper bound to interpolate to.
  return bounds_.back();
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::vector<double> default_ms_buckets() {
  return {0.1, 0.25, 0.5,  1.0,  2.5,  5.0,   10.0,  25.0,
          50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0, 60000.0};
}

std::vector<double> pow2_minute_buckets() {
  std::vector<double> bounds;
  bounds.reserve(17);
  for (int shift = 0; shift <= 16; ++shift)
    bounds.push_back(static_cast<double>(std::uint64_t{1} << shift));
  return bounds;
}

HistogramBatch::HistogramBatch(Histogram& sink)
    : sink_(sink),
      counts_(sink.upper_bounds().size() + 1, 0),
      sums_(sink.upper_bounds().size() + 1, 0.0) {}

void HistogramBatch::flush() noexcept {
  if (pending_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    sink_.merge_bucket(i, counts_[i], sums_[i]);
    counts_[i] = 0;
    sums_[i] = 0.0;
  }
  pending_ = 0;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry;  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  return *it->second;
}

std::string MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string json = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) json += ',';
    first = false;
    json += '"' + json_escape(name) + "\":" + std::to_string(c->value());
  }
  json += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) json += ',';
    first = false;
    json += '"' + json_escape(name) + "\":{\"value\":" +
            std::to_string(g->value()) +
            ",\"max\":" + std::to_string(g->max_value()) + '}';
  }
  json += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) json += ',';
    first = false;
    json += '"' + json_escape(name) + "\":{\"count\":" +
            std::to_string(h->count()) +
            ",\"sum\":" + format_json_double(h->sum()) +
            ",\"p50\":" + format_json_double(h->quantile(0.50)) +
            ",\"p90\":" + format_json_double(h->quantile(0.90)) +
            ",\"p99\":" + format_json_double(h->quantile(0.99)) +
            ",\"buckets\":[";
    const auto& bounds = h->upper_bounds();
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i) json += ',';
      json += "{\"le\":" + format_json_double(bounds[i]) +
              ",\"count\":" + std::to_string(counts[i]) + '}';
    }
    json += "],\"overflow\":" + std::to_string(counts.back()) + '}';
  }
  json += "}}";
  return json;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else (the
/// dots in cellscope.<layer>.<name>) maps to '_'.
std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9')
    out.insert(out.begin(), '_');
  return out;
}

}  // namespace

std::string MetricsRegistry::snapshot_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // One globally sorted exposition: merge the three per-kind maps into
  // (exposed name, render) rows so the output is deterministic and
  // diff-stable across runs regardless of registration order.
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    const std::string exposed = prometheus_name(name);
    rows.emplace_back(exposed, "# TYPE " + exposed + " counter\n" + exposed +
                                   ' ' + std::to_string(c->value()) + '\n');
  }
  for (const auto& [name, g] : gauges_) {
    const std::string exposed = prometheus_name(name);
    rows.emplace_back(
        exposed, "# TYPE " + exposed + " gauge\n" + exposed + ' ' +
                     std::to_string(g->value()) + "\n# TYPE " + exposed +
                     "_max gauge\n" + exposed + "_max " +
                     std::to_string(g->max_value()) + '\n');
  }
  for (const auto& [name, h] : histograms_) {
    const std::string exposed = prometheus_name(name);
    std::string text = "# TYPE " + exposed + " histogram\n";
    const auto& bounds = h->upper_bounds();
    const auto counts = h->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      text += exposed + "_bucket{le=\"" + format_prom_double(bounds[i]) +
              "\"} " + std::to_string(cumulative) + '\n';
    }
    cumulative += counts.back();
    text += exposed + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
            '\n';
    text += exposed + "_sum " + format_prom_double(h->sum()) + '\n';
    text += exposed + "_count " + std::to_string(cumulative) + '\n';
    rows.emplace_back(exposed, std::move(text));
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  for (auto& [name, text] : rows) out += text;
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace cellscope::obs
