// Process-global metrics: named counters, gauges, and fixed-bucket
// histograms with a JSON snapshot export.
//
// Registration (name -> metric lookup) takes a mutex once; the returned
// references are stable for the process lifetime, so call sites cache
// them and the hot path is a relaxed atomic per update — safe to hammer
// from every worker thread. Names follow cellscope.<layer>.<name>
// (DESIGN.md §7).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cellscope::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (e.g. queue depth) with a high-watermark.
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
    update_max(value);
  }
  void add(std::int64_t delta) noexcept {
    // High-watermark from the post-add level: fetch_add returns the prior
    // value, so prior + delta is exactly the level this add produced —
    // no re-read of value_, which another thread may have moved on.
    const std::int64_t post =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    update_max(post);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max_value() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_max(std::int64_t candidate) noexcept {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram with "less-or-equal" upper bounds (Prometheus
/// convention): observe(v) lands in the first bucket whose bound >= v,
/// or the overflow bucket when v exceeds every bound.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept;
  double mean() const noexcept;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; the final entry is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket where the cumulative count crosses q·count — the
  /// Prometheus histogram_quantile estimator. The first bucket
  /// interpolates from min(0, bound); ranks landing in the overflow
  /// bucket clamp to the largest bound. Returns 0 on an empty histogram.
  double quantile(double q) const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // bit-packed double (CAS add)
};

/// Wall-clock-millisecond bucket bounds shared by the stage/duration
/// histograms (0.1 ms .. 60 s).
std::vector<double> default_ms_buckets();

/// Escapes a string for embedding inside a JSON string literal.
std::string json_escape(std::string_view s);

/// The process-global registry.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Finds or creates a metric; references stay valid for the process
  /// lifetime. For histograms the first registration fixes the buckets.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);
  Histogram& histogram(std::string_view name) {
    return histogram(name, default_ms_buckets());
  }

  /// One JSON object with "counters", "gauges", and "histograms" keys,
  /// metrics sorted by name.
  std::string snapshot_json() const;

  /// Zeroes every registered metric (tests and bench reports).
  void reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace cellscope::obs
