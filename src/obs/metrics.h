// Process-global metrics: named counters, gauges, and fixed-bucket
// histograms with a JSON snapshot export.
//
// Registration (name -> metric lookup) takes a mutex once; the returned
// references are stable for the process lifetime, so call sites cache
// them and the hot path is a relaxed atomic per update — safe to hammer
// from every worker thread. Names follow cellscope.<layer>.<name>
// (DESIGN.md §7).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cellscope::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (e.g. queue depth) with a high-watermark.
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
    update_max(value);
  }
  void add(std::int64_t delta) noexcept {
    // High-watermark from the post-add level: fetch_add returns the prior
    // value, so prior + delta is exactly the level this add produced —
    // no re-read of value_, which another thread may have moved on.
    const std::int64_t post =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    update_max(post);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max_value() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_max(std::int64_t candidate) noexcept {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram with "less-or-equal" upper bounds (Prometheus
/// convention): observe(v) lands in the first bucket whose bound >= v,
/// or the overflow bucket when v exceeds every bound.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  /// Records `n` identical observations of `value` in one pass — the same
  /// three atomic updates as a single observe(), so batch producers (the
  /// stream ingestor's per-batch latency accounting) stay O(1) per batch
  /// instead of O(records).
  void observe_n(double value, std::uint64_t n) noexcept;

  /// Index of the bucket observe(value) would land in (the overflow
  /// bucket is bounds().size()).
  std::size_t bucket_of(double value) const noexcept;

  /// Merges a pre-aggregated cell into the histogram: `n` observations in
  /// `bucket` whose values sum to `value_sum`. The back door HistogramBatch
  /// flushes through; `bucket` must be <= upper_bounds().size().
  void merge_bucket(std::size_t bucket, std::uint64_t n,
                    double value_sum) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept;
  double mean() const noexcept;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; the final entry is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket where the cumulative count crosses q·count — the
  /// Prometheus histogram_quantile estimator. The first bucket
  /// interpolates from min(0, bound); ranks landing in the overflow
  /// bucket clamp to the largest bound. Returns 0 on an empty histogram.
  double quantile(double q) const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // bit-packed double (CAS add)
};

/// Wall-clock-millisecond bucket bounds shared by the stage/duration
/// histograms (0.1 ms .. 60 s).
std::vector<double> default_ms_buckets();

/// Power-of-two minute bounds (1, 2, 4, ... 65536) for event-time lag
/// histograms: bucket_of(lag) reduces to a bit_width, so hot ingest loops
/// can pre-bucket locally without a bounds search (see HistogramBatch).
std::vector<double> pow2_minute_buckets();

/// bucket_of() for a histogram built on pow2_minute_buckets(), computed
/// with one bit_width instead of a bounds search — agrees with
/// Histogram::bucket_of for every integer input (17 = overflow bucket).
inline std::size_t pow2_minute_bucket(std::uint64_t minutes) noexcept {
  if (minutes <= 1) return 0;
  const auto width = static_cast<std::size_t>(std::bit_width(minutes - 1));
  return width <= 16 ? width : 17;
}

/// Local, lock-free accumulator over one Histogram's bucket layout.
///
/// observe() touches only plain (non-atomic) cells; flush() merges every
/// dirty cell into the shared histogram with one merge_bucket() each —
/// turning per-record atomic traffic into per-batch traffic on hot paths.
/// Not thread-safe; make one per batch (or per thread) and flush before
/// the histogram is read.
class HistogramBatch {
 public:
  explicit HistogramBatch(Histogram& sink);
  ~HistogramBatch() { flush(); }

  void observe(double value) noexcept {
    observe_bucket(sink_.bucket_of(value), value);
  }
  /// For callers that computed the bucket themselves (e.g. via bit_width
  /// against pow2_minute_buckets()).
  void observe_bucket(std::size_t bucket, double value) noexcept {
    counts_[bucket] += 1;
    sums_[bucket] += value;
    pending_ += 1;
  }

  /// Observations accumulated locally and not yet flushed.
  std::uint64_t pending() const noexcept { return pending_; }

  void flush() noexcept;

  HistogramBatch(const HistogramBatch&) = delete;
  HistogramBatch& operator=(const HistogramBatch&) = delete;

 private:
  Histogram& sink_;
  std::vector<std::uint64_t> counts_;  // bounds + 1
  std::vector<double> sums_;
  std::uint64_t pending_ = 0;
};

/// Escapes a string for embedding inside a JSON string literal.
std::string json_escape(std::string_view s);

/// The process-global registry.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Finds or creates a metric; references stay valid for the process
  /// lifetime. For histograms the first registration fixes the buckets.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);
  Histogram& histogram(std::string_view name) {
    return histogram(name, default_ms_buckets());
  }

  /// One JSON object with "counters", "gauges", and "histograms" keys.
  /// Ordering is deterministic — metrics appear sorted by name within
  /// each section — so snapshots diff cleanly across runs.
  std::string snapshot_json() const;

  /// Prometheus text exposition (version 0.0.4) of every metric, sorted
  /// globally by exposed name. Dots in metric names become underscores;
  /// gauges additionally expose their high-watermark as `<name>_max`;
  /// histograms follow the cumulative `_bucket{le=...}` / `_sum` /
  /// `_count` convention. Served by /metrics (obs/introspect.h).
  std::string snapshot_prometheus() const;

  /// Zeroes every registered metric (tests and bench reports).
  void reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace cellscope::obs
