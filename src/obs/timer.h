// Wall-clock timing primitives: RAII timers feeding histograms, and a
// process-global stage trace that can emit Chrome trace-event JSON.
//
// StageTrace records begin/end spans per pipeline stage. Recording is off
// unless CELLSCOPE_TRACE=<path> is set (the trace is written to <path> at
// process exit) or a test enables it explicitly; when off, a span costs
// one relaxed atomic load. View traces in chrome://tracing or
// https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/log.h"

namespace cellscope::obs {

class Histogram;

/// Monotonic microseconds since process start (steady clock).
double now_us();

/// Converts a steady_clock time point to the same process-relative
/// microsecond scale now_us() uses — for spans whose start was stamped
/// elsewhere (queue entries, ingest arrival times).
double time_point_us(std::chrono::steady_clock::time_point tp);

/// Observes its elapsed wall time, in milliseconds, into a histogram on
/// destruction. Pass nullptr to only measure (elapsed_ms()).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* sink = nullptr)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  explicit ScopedTimer(Histogram& sink) : ScopedTimer(&sink) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Milliseconds since construction; monotonically non-decreasing.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  ~ScopedTimer();

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

/// One completed span.
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   ///< start, microseconds since process start
  double dur_us = 0.0;  ///< duration in microseconds
  std::uint64_t tid = 0;
  /// Optional pre-rendered JSON object body for the Chrome-trace "args"
  /// field (without braces), e.g. `"tower":12,"user":7` — empty = none.
  std::string args;
};

/// Process-global begin/end span recorder.
class StageTrace {
 public:
  /// Singleton; first call reads CELLSCOPE_TRACE. When the env var is set,
  /// recording is enabled and the trace is written there at process exit.
  static StageTrace& instance();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Opens a span; returns a token for end(), 0 when recording is off.
  std::uint64_t begin(std::string_view name, std::string_view category);

  /// Closes the span opened under `token` (0 is a no-op).
  void end(std::uint64_t token);

  /// Records an already-measured span in one call — for retroactive
  /// spans whose start was stamped before the recorder knew it would
  /// keep them (sampled record tracing, pool queue waits). `args` is an
  /// optional pre-rendered JSON object body (see TraceEvent::args).
  /// No-op when recording is off.
  void record_complete(std::string_view name, std::string_view category,
                       double ts_us, double dur_us, std::string args = {});

  /// Completed spans recorded so far. Retention is bounded (131072
  /// events); spans past the cap are dropped and counted, and clear()
  /// re-arms recording.
  std::vector<TraceEvent> events() const;
  /// Spans dropped by the retention cap since the last clear().
  std::uint64_t dropped() const;
  void clear();

  /// Chrome trace-event format ("traceEvents" of complete "X" events).
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  StageTrace(const StageTrace&) = delete;
  StageTrace& operator=(const StageTrace&) = delete;

 private:
  StageTrace();
  ~StageTrace();

  std::atomic<bool> enabled_{false};
  std::string exit_path_;  // from CELLSCOPE_TRACE; empty = no exit dump
  struct State;
  State* state_;
};

/// RAII pipeline-stage span: opens a StageTrace span, observes its wall
/// time into the `cellscope.<category>.stage_ms` histogram, and logs one
/// structured line (event=stage.done, stage, wall_ms, annotations) at the
/// requested level on destruction.
class StageSpan {
 public:
  explicit StageSpan(std::string_view stage,
                     std::string_view category = "pipeline",
                     LogLevel level = LogLevel::kInfo);

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  /// Attaches a field to the stage.done log line.
  void annotate(LogField field);

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  ~StageSpan();

 private:
  std::string stage_;
  LogLevel level_;
  std::vector<LogField> fields_;
  std::uint64_t token_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cellscope::obs
