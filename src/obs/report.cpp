#include "obs/report.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/error.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/timer.h"

// Baked in by src/obs/CMakeLists.txt at configure time; "unknown" when
// the tree is not a git checkout.
#ifndef CELLSCOPE_GIT_SHA
#define CELLSCOPE_GIT_SHA "unknown"
#endif
#ifndef CELLSCOPE_BUILD_TYPE
#define CELLSCOPE_BUILD_TYPE "unknown"
#endif

namespace cellscope::obs {

namespace {

std::string format_json_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no nan/inf literal
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// The armed exit report: name fixed by the first caller, config merged
/// across callers (an Experiment inside a bench contributes its rows to
/// the bench's report).
struct ArmedReport {
  std::mutex mutex;
  std::string name;
  std::vector<std::pair<std::string, std::string>> config;  // json tokens
  bool atexit_registered = false;
};

ArmedReport& armed_report() {
  static ArmedReport* armed = new ArmedReport;  // never destroyed
  return *armed;
}

void write_armed_report_at_exit() {
  const std::string& path = run_report_path();
  if (path.empty()) return;
  auto& armed = armed_report();
  std::string name;
  std::vector<std::pair<std::string, std::string>> config;
  {
    std::lock_guard<std::mutex> lock(armed.mutex);
    name = armed.name;
    config = armed.config;
  }
  RunReport report(std::move(name));
  for (auto& [key, token] : config)
    report.add_config_json(key, std::move(token));
  try {
    report.write(path);
    log_info("run_report.written", {{"path", path}});
  } catch (const Error& e) {
    // Exit-time report writes must never turn a green run red.
    log_warn("run_report.write_failed", {{"path", path}, {"error", e.what()}});
  }
}

}  // namespace

BuildInfo build_info() {
  BuildInfo info;
  info.git_sha = CELLSCOPE_GIT_SHA;
  info.build_type = CELLSCOPE_BUILD_TYPE;
#ifdef __VERSION__
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
  return info;
}

const std::string& run_report_path() {
  static const std::string path = [] {
    const char* env = std::getenv("CELLSCOPE_RUN_REPORT");
    return std::string(env && *env ? env : "");
  }();
  return path;
}

RunReport::RunReport(std::string name) : name_(std::move(name)) {}

void RunReport::add_config_json(std::string_view key,
                                std::string json_token) {
  for (auto& [k, v] : config_) {
    if (k == key) {
      v = std::move(json_token);
      return;
    }
  }
  config_.emplace_back(std::string(key), std::move(json_token));
}

void RunReport::add_config(std::string_view key, std::string_view value) {
  add_config_json(key, '"' + json_escape(value) + '"');
}

void RunReport::add_config(std::string_view key, double value) {
  add_config_json(key, format_json_double(value));
}

void RunReport::add_config(std::string_view key, bool value) {
  add_config_json(key, value ? "true" : "false");
}

void RunReport::add_config(std::string_view key, std::uint64_t value) {
  add_config_json(key, std::to_string(value));
}

void RunReport::add_config(std::string_view key, std::int64_t value) {
  add_config_json(key, std::to_string(value));
}

std::string RunReport::to_json() const {
  const BuildInfo build = build_info();
  auto& board = QualityBoard::instance();

  std::string json = "{\"report\":\"" + json_escape(name_) + "\"";
  json += ",\"schema\":1";
  json += ",\"created_unix_s\":" +
          std::to_string(std::chrono::duration_cast<std::chrono::seconds>(
                             std::chrono::system_clock::now()
                                 .time_since_epoch())
                             .count());
  json += ",\"build\":{\"git_sha\":\"" + json_escape(build.git_sha) +
          "\",\"build_type\":\"" + json_escape(build.build_type) +
          "\",\"compiler\":\"" + json_escape(build.compiler) + "\"}";
  json += ",\"config\":{";
  bool first = true;
  for (const auto& [key, token] : config_) {
    if (!first) json += ',';
    first = false;
    json += '"' + json_escape(key) + "\":" + token;
  }
  json += "}";
  json += ",\"wall_s\":" + format_json_double(now_us() / 1e6);
  json += ",\"stages\":[";
  first = true;
  for (const auto& e : StageTrace::instance().events()) {
    if (!first) json += ',';
    first = false;
    json += "{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
            json_escape(e.category) +
            "\",\"ts_us\":" + format_json_double(e.ts_us) +
            ",\"dur_us\":" + format_json_double(e.dur_us) + '}';
  }
  json += "],\"metrics\":" + MetricsRegistry::instance().snapshot_json();
  json += ",\"quality\":{\"passed\":" + std::to_string(board.passed()) +
          ",\"warned\":" + std::to_string(board.warned()) +
          ",\"failed\":" + std::to_string(board.failed()) +
          ",\"ok\":" + (board.ok() ? "true" : "false") +
          ",\"verdicts\":" + board.verdicts_json() + "}";
  json += "}";
  return json;
}

void RunReport::write(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) throw IoError("cannot write run report: " + path);
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

bool arm_run_report(const std::string& name) {
  return arm_run_report(name, {});
}

bool arm_run_report(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& config_json) {
  if (run_report_path().empty()) return false;
  // The report wants per-stage spans even without CELLSCOPE_TRACE.
  StageTrace::instance().set_enabled(true);
  auto& armed = armed_report();
  std::lock_guard<std::mutex> lock(armed.mutex);
  if (armed.name.empty()) armed.name = name;
  for (const auto& [key, token] : config_json) {
    bool replaced = false;
    for (auto& [k, v] : armed.config) {
      if (k == key) {
        v = token;
        replaced = true;
        break;
      }
    }
    if (!replaced) armed.config.emplace_back(key, token);
  }
  if (!armed.atexit_registered) {
    armed.atexit_registered = true;
    std::atexit(write_armed_report_at_exit);
  }
  return true;
}

bool run_report_armed() {
  auto& armed = armed_report();
  std::lock_guard<std::mutex> lock(armed.mutex);
  return armed.atexit_registered;
}

}  // namespace cellscope::obs
