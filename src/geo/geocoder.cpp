#include "geo/geocoder.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "common/error.h"
#include "common/string_util.h"

namespace cellscope {

AddressCodec::AddressCodec(const BoundingBox& box) : box_(box) {
  CS_CHECK_MSG(box.lat_max > box.lat_min && box.lon_max > box.lon_min,
               "bounding box must be non-degenerate");
}

namespace {

// Packs a per-axis index pair into one component value, keeping the address
// scheme one-dimensional per level like real street numbering.
int pack(int a, int b, int n) { return a * n + b; }

void unpack(int v, int n, int& a, int& b) {
  a = v / n;
  b = v % n;
}

}  // namespace

std::string AddressCodec::encode(const LatLon& p) const {
  const LatLon q = box_.clamp(p);
  const double fy = (q.lat - box_.lat_min) / (box_.lat_max - box_.lat_min);
  const double fx = (q.lon - box_.lon_min) / (box_.lon_max - box_.lon_min);
  const int total = kDistricts * kStreets * kNumbers;  // cells per axis
  const int iy = std::min(total - 1, static_cast<int>(fy * total));
  const int ix = std::min(total - 1, static_cast<int>(fx * total));

  const int dy = iy / (kStreets * kNumbers);
  const int sy = (iy / kNumbers) % kStreets;
  const int ny = iy % kNumbers;
  const int dx = ix / (kStreets * kNumbers);
  const int sx = (ix / kNumbers) % kStreets;
  const int nx = ix % kNumbers;

  char buf[80];
  std::snprintf(buf, sizeof(buf), "District-%d/Street-%d/No-%d",
                pack(dy, dx, kDistricts), pack(sy, sx, kStreets),
                pack(ny, nx, kNumbers));
  return buf;
}

std::optional<LatLon> AddressCodec::decode(const std::string& address) const {
  const auto parts = split(address, '/');
  if (parts.size() != 3) return std::nullopt;
  auto parse_field = [](const std::string& field, const char* prefix,
                        int limit) -> std::optional<int> {
    if (!starts_with(field, prefix)) return std::nullopt;
    const std::string digits = field.substr(std::string(prefix).size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      return std::nullopt;
    // from_chars, not atoi: a digit run longer than int is undefined
    // behavior under atoi and must reject, not wrap or saturate.
    int v = 0;
    const char* end = digits.data() + digits.size();
    const auto [ptr, ec] = std::from_chars(digits.data(), end, v);
    if (ec != std::errc() || ptr != end) return std::nullopt;
    if (v < 0 || v >= limit * limit) return std::nullopt;
    return v;
  };
  const auto d = parse_field(parts[0], "District-", kDistricts);
  const auto s = parse_field(parts[1], "Street-", kStreets);
  const auto n = parse_field(parts[2], "No-", kNumbers);
  if (!d || !s || !n) return std::nullopt;

  int dy, dx, sy, sx, ny, nx;
  unpack(*d, kDistricts, dy, dx);
  unpack(*s, kStreets, sy, sx);
  unpack(*n, kNumbers, ny, nx);

  const int total = kDistricts * kStreets * kNumbers;
  const int iy = dy * kStreets * kNumbers + sy * kNumbers + ny;
  const int ix = dx * kStreets * kNumbers + sx * kNumbers + nx;
  // Cell center.
  const double fy = (static_cast<double>(iy) + 0.5) / total;
  const double fx = (static_cast<double>(ix) + 0.5) / total;
  return LatLon{box_.lat_min + fy * (box_.lat_max - box_.lat_min),
                box_.lon_min + fx * (box_.lon_max - box_.lon_min)};
}

Geocoder::Geocoder(const BoundingBox& box, Options options)
    : codec_(box), options_(options) {}

std::optional<LatLon> Geocoder::geocode(const std::string& address) {
  if (const auto it = cache_.find(address); it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  if (options_.quota != 0 && api_calls_ >= options_.quota)
    throw Error("geocoder quota exhausted after " +
                std::to_string(api_calls_) + " calls");
  ++api_calls_;
  auto result = codec_.decode(address);
  cache_.emplace(address, result);
  return result;
}

std::string Geocoder::reverse_geocode(const LatLon& p) const {
  return codec_.encode(p);
}

}  // namespace cellscope
