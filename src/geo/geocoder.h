// Simulated geocoding service.
//
// The paper resolves base-station street addresses to coordinates through
// the Baidu Map API (§2.2). That service is unavailable offline, so this
// module provides a faithful stand-in (DESIGN.md §2): a deterministic
// address scheme ("District-D/Street-S/No-N", which quantizes the city to a
// ~10 m grid) plus a Geocoder service object with the operational traits of
// a remote API — per-query accounting, an LRU-less result cache, and an
// optional daily quota that makes over-use observable in tests.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>

#include "geo/latlon.h"

namespace cellscope {

/// Deterministic two-way mapping between coordinates and synthetic street
/// addresses over a bounding box.
class AddressCodec {
 public:
  explicit AddressCodec(const BoundingBox& box);

  /// Formats a point as "District-D/Street-S/No-N". The encoding quantizes
  /// to roughly 10 m; decode(encode(p)) is within that tolerance of p.
  std::string encode(const LatLon& p) const;

  /// Parses an address back to coordinates; returns std::nullopt for
  /// malformed addresses (the cleaner drops such logs).
  std::optional<LatLon> decode(const std::string& address) const;

 private:
  BoundingBox box_;
  // District: coarse grid; street: finer; number: finest. The product of
  // the three grid levels yields the ~10 m resolution.
  static constexpr int kDistricts = 32;     // per axis
  static constexpr int kStreets = 64;       // per district, per axis
  static constexpr int kNumbers = 64;       // per street cell, per axis
};

/// Geocoding service façade with cache, accounting and quota.
class Geocoder {
 public:
  struct Options {
    /// Maximum number of *uncached* lookups allowed (0 = unlimited),
    /// mirroring commercial API daily quotas.
    std::size_t quota = 0;
  };

  explicit Geocoder(const BoundingBox& box) : Geocoder(box, Options{}) {}
  Geocoder(const BoundingBox& box, Options options);

  /// Resolves an address. Returns std::nullopt for malformed addresses.
  /// Throws cellscope::Error if the quota is exhausted (cache hits are
  /// always free, as with the real API's client-side cache).
  std::optional<LatLon> geocode(const std::string& address);

  /// Formats coordinates as an address (the generator uses this to label
  /// synthetic base stations, playing the role of the ISP's address field).
  std::string reverse_geocode(const LatLon& p) const;

  /// Uncached lookups performed so far.
  std::size_t api_calls() const { return api_calls_; }

  /// Lookups served from the cache.
  std::size_t cache_hits() const { return cache_hits_; }

 private:
  AddressCodec codec_;
  Options options_;
  std::unordered_map<std::string, std::optional<LatLon>> cache_;
  std::size_t api_calls_ = 0;
  std::size_t cache_hits_ = 0;
};

}  // namespace cellscope
