#include "geo/latlon.h"

#include <algorithm>
#include <cmath>

namespace cellscope {

namespace {
constexpr double kEarthRadiusM = 6371000.0;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double haversine_m(const LatLon& a, const LatLon& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(s)));
}

double haversine_km(const LatLon& a, const LatLon& b) {
  return haversine_m(a, b) / 1000.0;
}

bool BoundingBox::contains(const LatLon& p) const {
  return p.lat >= lat_min && p.lat <= lat_max && p.lon >= lon_min &&
         p.lon <= lon_max;
}

LatLon BoundingBox::center() const {
  return {(lat_min + lat_max) / 2.0, (lon_min + lon_max) / 2.0};
}

double BoundingBox::height_km() const {
  return (lat_max - lat_min) * km_per_degree_lat();
}

double BoundingBox::width_km() const {
  return (lon_max - lon_min) * km_per_degree_lon(center().lat);
}

double BoundingBox::area_km2() const { return height_km() * width_km(); }

LatLon BoundingBox::clamp(const LatLon& p) const {
  return {std::clamp(p.lat, lat_min, lat_max),
          std::clamp(p.lon, lon_min, lon_max)};
}

BoundingBox shanghai_bbox() {
  // Metropolitan Shanghai, matching the spatial extent of the paper's maps.
  return {30.95, 31.45, 121.20, 121.80};
}

double km_per_degree_lat() { return 111.32; }

double km_per_degree_lon(double lat) {
  return 111.32 * std::cos(lat * kDegToRad);
}

}  // namespace cellscope
