#include "geo/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace cellscope {

SpatialIndex::SpatialIndex(const BoundingBox& box, std::vector<LatLon> points,
                           double cell_km)
    : box_(box), points_(std::move(points)) {
  CS_CHECK_MSG(cell_km > 0.0, "cell_km must be positive");
  CS_CHECK_MSG(box.lat_max > box.lat_min && box.lon_max > box.lon_min,
               "bounding box must be non-degenerate");
  const double height_km = box_.height_km();
  const double width_km = box_.width_km();
  rows_ = std::max<std::size_t>(1, static_cast<std::size_t>(height_km / cell_km));
  cols_ = std::max<std::size_t>(1, static_cast<std::size_t>(width_km / cell_km));
  cell_lat_deg_ = (box_.lat_max - box_.lat_min) / static_cast<double>(rows_);
  cell_lon_deg_ = (box_.lon_max - box_.lon_min) / static_cast<double>(cols_);
  buckets_.resize(rows_ * cols_);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    points_[i] = box_.clamp(points_[i]);
    buckets_[bucket_of(points_[i])].push_back(i);
  }
}

std::size_t SpatialIndex::bucket_of(const LatLon& p) const {
  auto clamp_idx = [](double f, std::size_t n) {
    const auto i = static_cast<std::ptrdiff_t>(f);
    return static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(n) - 1));
  };
  const std::size_t r =
      clamp_idx((p.lat - box_.lat_min) / cell_lat_deg_, rows_);
  const std::size_t c =
      clamp_idx((p.lon - box_.lon_min) / cell_lon_deg_, cols_);
  return r * cols_ + c;
}

std::vector<std::size_t> SpatialIndex::query_radius(const LatLon& center,
                                                    double radius_m) const {
  CS_CHECK_MSG(radius_m >= 0.0, "radius must be non-negative");
  std::vector<std::size_t> out;
  if (points_.empty()) return out;

  // Conservative degree extents of the radius.
  const double dlat = radius_m / 1000.0 / km_per_degree_lat();
  const double dlon =
      radius_m / 1000.0 / std::max(1e-9, km_per_degree_lon(center.lat));

  const LatLon lo = box_.clamp({center.lat - dlat, center.lon - dlon});
  const LatLon hi = box_.clamp({center.lat + dlat, center.lon + dlon});
  const std::size_t r0 = bucket_of(lo) / cols_;
  const std::size_t c0 = bucket_of(lo) % cols_;
  const std::size_t r1 = bucket_of(hi) / cols_;
  const std::size_t c1 = bucket_of(hi) % cols_;

  for (std::size_t r = r0; r <= r1; ++r) {
    for (std::size_t c = c0; c <= c1; ++c) {
      for (const std::size_t i : buckets_[r * cols_ + c]) {
        if (haversine_m(points_[i], center) <= radius_m) out.push_back(i);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t SpatialIndex::count_radius(const LatLon& center,
                                       double radius_m) const {
  return query_radius(center, radius_m).size();
}

std::size_t SpatialIndex::nearest(const LatLon& center) const {
  CS_CHECK_MSG(!points_.empty(), "nearest() on an empty index");
  // Expanding-radius search over buckets, falling back to a linear scan for
  // correctness once the search ring covers the whole grid.
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (double radius_m = 500.0;; radius_m *= 2.0) {
    for (const std::size_t i : query_radius(center, radius_m)) {
      const double d = haversine_m(points_[i], center);
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    if (best <= radius_m) return best_i;
    const double diag_m =
        1000.0 * std::hypot(box_.height_km(), box_.width_km());
    if (radius_m > diag_m) break;
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double d = haversine_m(points_[i], center);
    if (d < best) {
      best = d;
      best_i = i;
    }
  }
  return best_i;
}

}  // namespace cellscope
