// Rasterized per-km² quantities over the study area.
//
// The paper's preprocessing computes traffic density (bytes/km²) across the
// city and renders it as heatmaps at several times of day (Fig. 2); the
// same grid also renders the per-cluster tower-density maps of Fig. 7.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/latlon.h"

namespace cellscope {

/// A rows × cols raster over a bounding box accumulating a scalar quantity
/// (bytes, tower counts, ...) per cell, with per-km² readout.
class DensityGrid {
 public:
  /// Creates an empty grid. rows, cols >= 1; the box must be non-degenerate.
  DensityGrid(const BoundingBox& box, std::size_t rows, std::size_t cols);

  /// Adds `amount` to the cell containing `p`; points outside the box are
  /// ignored (the paper's maps clip to the city extent).
  void add(const LatLon& p, double amount);

  /// Raw accumulated value of a cell.
  double value_at(std::size_t row, std::size_t col) const;

  /// Accumulated value divided by the cell area (per-km² density).
  double density_at(std::size_t row, std::size_t col) const;

  /// Cell area in km² (identical for all cells under the planar
  /// approximation).
  double cell_area_km2() const;

  /// Row index for a latitude (clamped); col index for a longitude.
  std::size_t row_of(double lat) const;
  std::size_t col_of(double lon) const;

  /// Geographic center of a cell.
  LatLon cell_center(std::size_t row, std::size_t col) const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const BoundingBox& box() const { return box_; }

  /// Sum over all cells.
  double total() const;

  /// Largest cell value and its location.
  struct Peak {
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
  };
  Peak peak() const;

  /// Dense row-major copy of the raw values (for rendering/export).
  std::vector<double> values() const { return cells_; }

  /// Resets all cells to zero.
  void clear();

 private:
  BoundingBox box_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> cells_;  // row-major
};

}  // namespace cellscope
