#include "geo/density_grid.h"

#include <algorithm>

#include "common/error.h"

namespace cellscope {

DensityGrid::DensityGrid(const BoundingBox& box, std::size_t rows,
                         std::size_t cols)
    : box_(box), rows_(rows), cols_(cols), cells_(rows * cols, 0.0) {
  CS_CHECK_MSG(rows >= 1 && cols >= 1, "grid must have at least one cell");
  CS_CHECK_MSG(box.lat_max > box.lat_min && box.lon_max > box.lon_min,
               "bounding box must be non-degenerate");
}

void DensityGrid::add(const LatLon& p, double amount) {
  if (!box_.contains(p)) return;
  cells_[row_of(p.lat) * cols_ + col_of(p.lon)] += amount;
}

double DensityGrid::value_at(std::size_t row, std::size_t col) const {
  CS_CHECK_MSG(row < rows_ && col < cols_, "cell index out of range");
  return cells_[row * cols_ + col];
}

double DensityGrid::density_at(std::size_t row, std::size_t col) const {
  return value_at(row, col) / cell_area_km2();
}

double DensityGrid::cell_area_km2() const {
  return box_.area_km2() / static_cast<double>(rows_ * cols_);
}

std::size_t DensityGrid::row_of(double lat) const {
  const double f = (lat - box_.lat_min) / (box_.lat_max - box_.lat_min);
  const auto r = static_cast<std::ptrdiff_t>(f * static_cast<double>(rows_));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(r, 0, static_cast<std::ptrdiff_t>(rows_) - 1));
}

std::size_t DensityGrid::col_of(double lon) const {
  const double f = (lon - box_.lon_min) / (box_.lon_max - box_.lon_min);
  const auto c = static_cast<std::ptrdiff_t>(f * static_cast<double>(cols_));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(c, 0, static_cast<std::ptrdiff_t>(cols_) - 1));
}

LatLon DensityGrid::cell_center(std::size_t row, std::size_t col) const {
  CS_CHECK_MSG(row < rows_ && col < cols_, "cell index out of range");
  const double dlat = (box_.lat_max - box_.lat_min) / static_cast<double>(rows_);
  const double dlon = (box_.lon_max - box_.lon_min) / static_cast<double>(cols_);
  return {box_.lat_min + (static_cast<double>(row) + 0.5) * dlat,
          box_.lon_min + (static_cast<double>(col) + 0.5) * dlon};
}

double DensityGrid::total() const {
  double s = 0.0;
  for (const double v : cells_) s += v;
  return s;
}

DensityGrid::Peak DensityGrid::peak() const {
  Peak p;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (cells_[r * cols_ + c] > p.value) p = {r, c, cells_[r * cols_ + c]};
  return p;
}

void DensityGrid::clear() { std::fill(cells_.begin(), cells_.end(), 0.0); }

}  // namespace cellscope
