// Grid-bucketed spatial index with radius queries.
//
// The paper repeatedly needs "all POIs within 200 m of a tower" (§3.3) and
// "towers near a map point"; a uniform-grid index gives O(1)-bucket radius
// queries at city scale without external dependencies.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/latlon.h"

namespace cellscope {

/// An immutable set of points bucketed on a uniform lat/lon grid,
/// supporting exact radius queries (haversine-verified).
class SpatialIndex {
 public:
  /// Builds the index over `points` within `box`. `cell_km` is the target
  /// bucket edge length in kilometers (> 0). Points outside the box are
  /// clamped into it (towers at the city fringe remain queryable).
  SpatialIndex(const BoundingBox& box, std::vector<LatLon> points,
               double cell_km = 0.5);

  /// Indices of all points within `radius_m` meters of `center`.
  std::vector<std::size_t> query_radius(const LatLon& center,
                                        double radius_m) const;

  /// Number of points within `radius_m` meters of `center`.
  std::size_t count_radius(const LatLon& center, double radius_m) const;

  /// Index of the nearest point to `center`; requires a non-empty index.
  std::size_t nearest(const LatLon& center) const;

  std::size_t size() const { return points_.size(); }
  const LatLon& point(std::size_t i) const { return points_[i]; }

 private:
  std::size_t bucket_of(const LatLon& p) const;

  BoundingBox box_;
  std::vector<LatLon> points_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  double cell_lat_deg_ = 0.0;
  double cell_lon_deg_ = 0.0;
  std::vector<std::vector<std::size_t>> buckets_;
};

}  // namespace cellscope
