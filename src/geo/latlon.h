// Geographic coordinates and distance computations.
//
// The paper geocodes base-station addresses to latitude/longitude, counts
// POIs within 200 m of each tower, and computes traffic density per km².
// This header provides the coordinate type, haversine great-circle
// distance, and the bounding box of the synthetic study area (approximating
// the Shanghai metropolitan extent used in the paper's maps).
#pragma once

namespace cellscope {

/// A WGS-84 latitude/longitude pair in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance between two points in meters (haversine formula,
/// mean Earth radius 6,371 km).
double haversine_m(const LatLon& a, const LatLon& b);

/// Great-circle distance in kilometers.
double haversine_km(const LatLon& a, const LatLon& b);

/// An axis-aligned geographic bounding box.
struct BoundingBox {
  double lat_min = 0.0;
  double lat_max = 0.0;
  double lon_min = 0.0;
  double lon_max = 0.0;

  /// True if the point lies inside (inclusive).
  bool contains(const LatLon& p) const;

  /// Center of the box.
  LatLon center() const;

  /// North-south extent in kilometers (at the box's mean latitude).
  double height_km() const;

  /// East-west extent in kilometers (at the box's mean latitude).
  double width_km() const;

  /// Area in km² (small-box planar approximation).
  double area_km2() const;

  /// Clamps a point into the box.
  LatLon clamp(const LatLon& p) const;
};

/// The synthetic study area: a box over metropolitan Shanghai, matching the
/// extents visible in the paper's Fig. 2/7 maps.
BoundingBox shanghai_bbox();

/// Approximate kilometers per degree of latitude (constant).
double km_per_degree_lat();

/// Approximate kilometers per degree of longitude at the given latitude.
double km_per_degree_lon(double lat);

}  // namespace cellscope
