#include "mapred/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/error.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope {

namespace {

constexpr double kNsPerMs = 1e6;

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since,
                         std::chrono::steady_clock::time_point until) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(until - since)
          .count());
}

}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads, std::size_t max_queue)
    : max_queue_(max_queue) {
  CS_CHECK_MSG(n_threads >= 1, "thread pool needs at least one worker");
  auto& registry = obs::MetricsRegistry::instance();
  metric_submitted_ = &registry.counter("cellscope.mapred.tasks_submitted");
  metric_completed_ = &registry.counter("cellscope.mapred.tasks_completed");
  metric_rejected_ = &registry.counter("cellscope.mapred.tasks_rejected");
  metric_queue_depth_ = &registry.gauge("cellscope.mapred.queue_depth");
  busy_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) busy_ns_[i].store(0);
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  cv_space_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::enqueue_locked(QueuedTask queued) {
  auto future = queued.task.get_future();
  tasks_.push(std::move(queued));
  submitted_.fetch_add(1, std::memory_order_relaxed);
  metric_submitted_->add(1);
  metric_queue_depth_->add(1);
  return future;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  QueuedTask queued{std::packaged_task<void()>(std::move(task)),
                    std::chrono::steady_clock::now()};
  std::future<void> future;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CS_CHECK_MSG(!stopping_, "submit on a stopping pool");
    if (max_queue_ > 0)
      cv_space_.wait(lock, [this] {
        return stopping_ || tasks_.size() < max_queue_;
      });
    CS_CHECK_MSG(!stopping_, "submit on a stopping pool");
    future = enqueue_locked(std::move(queued));
  }
  cv_.notify_one();
  return future;
}

std::optional<std::future<void>> ThreadPool::try_submit(
    std::function<void()> task) {
  // Simulated admission rejection: exercises every caller's fallback
  // (caller-runs draining, inline folds) without needing a genuinely
  // saturated queue — the fault suite's handle on backpressure paths.
  if (CS_FAILPOINT("mapred.submit.reject")) {
    metric_rejected_->add(1);
    return std::nullopt;
  }
  QueuedTask queued{std::packaged_task<void()>(std::move(task)),
                    std::chrono::steady_clock::now()};
  std::future<void> future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CS_CHECK_MSG(!stopping_, "try_submit on a stopping pool");
    if (max_queue_ > 0 && tasks_.size() >= max_queue_) {
      metric_rejected_->add(1);
      return std::nullopt;
    }
    future = enqueue_locked(std::move(queued));
  }
  cv_.notify_one();
  return future;
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t blocks = std::min(n, workers_.size() * 4);
  const std::size_t per_block = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * per_block;
    const std::size_t end = std::min(n, begin + per_block);
    if (begin >= end) break;
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first failure
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  for (;;) {
    QueuedTask queued;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      queued = std::move(tasks_.front());
      tasks_.pop();
    }
    if (max_queue_ > 0) cv_space_.notify_one();
    const auto started = std::chrono::steady_clock::now();
    queue_wait_ns_.fetch_add(elapsed_ns(queued.enqueued, started),
                             std::memory_order_relaxed);
    auto& trace = obs::StageTrace::instance();
    if (trace.enabled()) {
      // Tasks are coarse (per-shard drains, parallel_for blocks), so one
      // retroactive span per dequeue is cheap and makes pool contention
      // visible on the trace timeline next to the stage spans.
      const double enqueued_us = obs::time_point_us(queued.enqueued);
      trace.record_complete("pool.queue_wait", "mapred", enqueued_us,
                            obs::time_point_us(started) - enqueued_us,
                            "\"worker\":" + std::to_string(worker_index));
    }
    metric_queue_depth_->add(-1);
    queued.task();
    busy_ns_[worker_index].fetch_add(
        elapsed_ns(started, std::chrono::steady_clock::now()),
        std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    metric_completed_->add(1);
  }
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats s;
  s.tasks_submitted = submitted_.load(std::memory_order_relaxed);
  s.tasks_completed = completed_.load(std::memory_order_relaxed);
  s.total_queue_wait_ms =
      static_cast<double>(queue_wait_ns_.load(std::memory_order_relaxed)) /
      kNsPerMs;
  s.per_worker_busy_ms.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const double busy =
        static_cast<double>(busy_ns_[i].load(std::memory_order_relaxed)) /
        kNsPerMs;
    s.per_worker_busy_ms.push_back(busy);
    s.total_busy_ms += busy;
  }
  return s;
}

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(2, hw);
}

std::size_t configured_thread_count() {
  const char* env = std::getenv("CELLSCOPE_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1)
      return static_cast<std::size_t>(parsed);
  }
  return default_thread_count();
}

}  // namespace cellscope
