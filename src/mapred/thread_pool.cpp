#include "mapred/thread_pool.h"

#include <algorithm>

#include "common/error.h"

namespace cellscope {

ThreadPool::ThreadPool(std::size_t n_threads) {
  CS_CHECK_MSG(n_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CS_CHECK_MSG(!stopping_, "submit on a stopping pool");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t blocks = std::min(n, workers_.size() * 4);
  const std::size_t per_block = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * per_block;
    const std::size_t end = std::min(n, begin + per_block);
    if (begin >= end) break;
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();  // rethrows the first failure
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::size_t default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(2, hw);
}

}  // namespace cellscope
