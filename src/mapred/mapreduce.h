// In-process MapReduce engine.
//
// Substitute for the Hadoop platform the paper's traffic vectorizer runs on
// (§3.2): inputs are split into chunks, mapped in parallel into per-worker
// (key, value) stores with an associative combiner (Hadoop's combiner
// optimization), and the partial stores are merged into the final result.
// Deterministic whenever the combiner is commutative and associative —
// which sum-style traffic aggregation is.
#pragma once

#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "mapred/thread_pool.h"

namespace cellscope {

/// Configuration of one MapReduce run.
struct MapReduceOptions {
  /// Inputs per map chunk (Hadoop split size at miniature scale).
  std::size_t chunk_size = 16384;
};

/// Runs map-combine-merge over `inputs`.
///
/// `map_fn(input, emit)` is called once per input and may emit any number
/// of (key, value) pairs. `combine_fn(accumulator, value)` folds a value
/// into an accumulator; it must be commutative and associative for the
/// result to be independent of scheduling. Returns the merged store.
template <typename Input, typename K, typename V, typename MapFn,
          typename CombineFn>
std::unordered_map<K, V> map_reduce(std::span<const Input> inputs,
                                    ThreadPool& pool, MapFn map_fn,
                                    CombineFn combine_fn,
                                    const MapReduceOptions& options = {}) {
  CS_CHECK_MSG(options.chunk_size >= 1, "chunk size must be >= 1");
  const std::size_t n_chunks =
      inputs.empty() ? 0 : (inputs.size() + options.chunk_size - 1) /
                               options.chunk_size;

  std::vector<std::unordered_map<K, V>> partials(n_chunks);
  pool.parallel_for(n_chunks, [&](std::size_t c) {
    auto& local = partials[c];
    const std::size_t begin = c * options.chunk_size;
    const std::size_t end =
        std::min(inputs.size(), begin + options.chunk_size);
    auto emit = [&](const K& key, V value) {
      auto [it, inserted] = local.try_emplace(key, value);
      if (!inserted) combine_fn(it->second, std::move(value));
    };
    for (std::size_t i = begin; i < end; ++i) map_fn(inputs[i], emit);
  });

  // Merge phase (the "reduce" of our sum-style jobs *is* the combiner).
  std::unordered_map<K, V> merged;
  for (auto& partial : partials) {
    if (merged.empty()) {
      merged = std::move(partial);
      continue;
    }
    for (auto& [key, value] : partial) {
      auto [it, inserted] = merged.try_emplace(key, value);
      if (!inserted) combine_fn(it->second, std::move(value));
    }
  }
  return merged;
}

}  // namespace cellscope
