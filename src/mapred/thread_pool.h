// A fixed-size worker thread pool.
//
// Backbone of the in-process MapReduce engine that substitutes for the
// paper's Hadoop platform (DESIGN.md §2). Tasks are arbitrary callables;
// parallel_for partitions an index range over the workers. The pool keeps
// utilization stats (tasks run, queue wait, per-worker busy time) and
// feeds the global cellscope.mapred.* metrics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <vector>

namespace cellscope {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

/// Utilization snapshot of one ThreadPool.
struct ThreadPoolStats {
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_completed = 0;
  /// Total time tasks spent queued before a worker picked them up.
  double total_queue_wait_ms = 0.0;
  /// Total time workers spent running tasks (sum over workers).
  double total_busy_ms = 0.0;
  /// Busy time per worker, indexed 0..thread_count-1.
  std::vector<double> per_worker_busy_ms;
};

/// Fixed-size thread pool with task futures and a blocking parallel_for.
class ThreadPool {
 public:
  /// Spawns `n_threads` workers; throws cellscope::Error when n_threads
  /// is 0 (a zero-worker pool would hang every submit forever).
  /// `max_queue` bounds the pending-task queue: 0 (default) grows the
  /// queue without limit; a positive bound makes submit() block until a
  /// worker frees a slot and try_submit() reject instead — backpressure
  /// for producers like the stream ingestor (DESIGN.md §9).
  explicit ThreadPool(std::size_t n_threads, std::size_t max_queue = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it completes (exceptions
  /// propagate through the future). On a bounded pool this blocks while
  /// the queue is full.
  std::future<void> submit(std::function<void()> task);

  /// Non-blocking admission: enqueues like submit() when the queue has
  /// room and returns the future; returns nullopt (and bumps
  /// cellscope.mapred.tasks_rejected) when a bound is configured and the
  /// queue is full. Callers handle rejection by running the task inline
  /// or retrying later — explicit backpressure instead of unbounded
  /// queue growth. Unbounded pools always accept.
  std::optional<std::future<void>> try_submit(std::function<void()> task);

  /// The configured queue bound (0 = unbounded).
  std::size_t max_queue() const { return max_queue_; }

  /// Pending tasks not yet picked up by a worker.
  std::size_t queue_depth() const;

  /// Runs fn(i) for i in [0, n), partitioned into contiguous blocks across
  /// the workers; blocks until every call finished. The first exception
  /// thrown by any fn(i) is rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t thread_count() const { return workers_.size(); }

  /// Utilization counters accumulated since construction.
  ThreadPoolStats stats() const;

 private:
  struct QueuedTask {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(std::size_t worker_index);

  /// Enqueues under the lock; shared tail of submit()/try_submit().
  std::future<void> enqueue_locked(QueuedTask queued);

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> tasks_;
  std::size_t max_queue_ = 0;  // 0 = unbounded
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable cv_space_;  // signaled when a bounded queue drains
  bool stopping_ = false;

  // Pool-local stats (relaxed atomics; snapshotted by stats()).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> queue_wait_ns_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> busy_ns_;  // per worker

  // Process-global metrics (registered once, hot-path cached).
  obs::Counter* metric_submitted_;
  obs::Counter* metric_completed_;
  obs::Counter* metric_rejected_;
  obs::Gauge* metric_queue_depth_;
};

/// A sensible default worker count for this machine (at least 2 so the
/// MapReduce path is genuinely concurrent even on single-core CI).
std::size_t default_thread_count();

/// Worker count for the analytics pools: the CELLSCOPE_THREADS environment
/// variable when set to a positive integer, otherwise
/// default_thread_count(). CELLSCOPE_THREADS=1 forces the serial path —
/// results are bit-identical either way (DESIGN.md §8).
std::size_t configured_thread_count();

}  // namespace cellscope
