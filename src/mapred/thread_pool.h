// A fixed-size worker thread pool.
//
// Backbone of the in-process MapReduce engine that substitutes for the
// paper's Hadoop platform (DESIGN.md §2). Tasks are arbitrary callables;
// parallel_for partitions an index range over the workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cellscope {

/// Fixed-size thread pool with task futures and a blocking parallel_for.
class ThreadPool {
 public:
  /// Spawns `n_threads` workers (>= 1).
  explicit ThreadPool(std::size_t n_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it completes (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), partitioned into contiguous blocks across
  /// the workers; blocks until every call finished. The first exception
  /// thrown by any fn(i) is rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// A sensible default worker count for this machine (at least 2 so the
/// MapReduce path is genuinely concurrent even on single-core CI).
std::size_t default_thread_count();

}  // namespace cellscope
