// Perf/ablation: FFT implementations across transform sizes — iterative
// radix-2 on powers of two, Bluestein on arbitrary sizes (including the
// paper's N = 4032), and the naive O(N²) DFT as the baseline that makes
// the fast paths' asymptotic win visible.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "common/rng.h"
#include "dsp/fft.h"
#include "dsp/spectrum.h"

namespace {

using cellscope::Complex;

std::vector<Complex> random_signal(std::size_t n) {
  cellscope::Rng rng(n);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  return x;
}

void BM_FftRadix2(benchmark::State& state) {
  const auto x = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = cellscope::fft(x);
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftRadix2)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_FftBluestein(benchmark::State& state) {
  // Sizes chosen non-power-of-two; 4032 is the paper's grid.
  const auto x = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = cellscope::fft(x);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FftBluestein)->Arg(63)->Arg(1008)->Arg(4032)->Arg(12096);

void BM_NaiveDft(benchmark::State& state) {
  const auto x = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = cellscope::naive_dft(x);
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaiveDft)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

void BM_SpectrumFeatureExtraction(benchmark::State& state) {
  // The per-tower cost of the frequency-feature stage: one 4032-point
  // real FFT plus amplitude/phase reads.
  cellscope::Rng rng(7);
  std::vector<double> series(4032);
  for (auto& v : series) v = rng.normal();
  for (auto _ : state) {
    cellscope::Spectrum spectrum(series);
    benchmark::DoNotOptimize(spectrum.normalized_amplitude(28));
    benchmark::DoNotOptimize(spectrum.phase(28));
  }
}
BENCHMARK(BM_SpectrumFeatureExtraction);

}  // namespace

CELLSCOPE_BENCH_JSON("perf_fft");
