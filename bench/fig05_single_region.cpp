// Figure 5 — the same visualization as Fig. 4 but restricted to towers of
// one region type: residential (peak ~21:00-21:30, quiet 8:00-16:00) and
// business district (peak around midday). Regularity replaces disorder.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 5",
         "Normalized daily traffic of 40 towers from a single region — "
         "regular patterns");
  const auto& e = experiment();

  for (const auto [region, label] :
       {std::pair{FunctionalRegion::kResident, "(a) residential towers"},
        std::pair{FunctionalRegion::kOffice, "(b) business-district towers"}}) {
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < e.towers().size() && rows.size() < 40; ++i)
      if (e.towers()[i].true_region == region) rows.push_back(i);

    std::vector<double> cells;
    std::vector<double> peak_hours;
    for (const auto row : rows) {
      const auto features = compute_time_features(e.matrix().rows[row]);
      const auto normalized = max_normalize(features.weekday.mean_day);
      peak_hours.push_back(features.weekday.peak_hour);
      for (const double v : normalized) cells.push_back(v);
    }
    std::cout << heatmap(cells, rows.size(), TimeGrid::kSlotsPerDay,
                         std::string(label) +
                             " — hour of day runs left to right")
              << "\n";
    const double lo = quantile(peak_hours, 0.05);
    const double hi = quantile(peak_hours, 0.95);
    std::cout << "  median peak at "
              << format_peak_time(quantile(peak_hours, 0.5))
              << "; 5th..95th percentile spread "
              << format_double(hi - lo, 1)
              << " h (vs ~10 h across all towers in Fig. 4)\n\n";
    export_series(region == FunctionalRegion::kResident
                      ? "fig05a_resident_peaks"
                      : "fig05b_office_peaks",
                  peak_hours, "peak_hour");
  }
  std::cout << "CSV exported to " << figure_output_dir() << "/fig05*.csv\n";
  return 0;
}
