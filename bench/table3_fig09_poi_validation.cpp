// Table 3 + Figure 9 — macro-scale validation: min-max-normalized POI
// counts averaged per cluster (Table 3) and each cluster's POI shares
// (Fig. 9 pie charts). Paper: transport POI holds 44% of the transport
// cluster's share, entertainment 39% of the entertainment cluster's.
#include <iostream>

#include "analysis/poi_features.h"
#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Table 3 + Figure 9",
         "Averaged normalized POI of the five clusters, and per-cluster "
         "POI shares");
  const auto& e = experiment();
  const auto normalized = normalized_poi_by_cluster(e.poi_counts(),
                                                    e.labels());
  const auto shares = poi_shares_by_cluster(normalized);

  TextTable table("Table 3 — averaged min-max-normalized POI");
  table.set_header({"cluster", "region", "Resident", "Transport", "Office",
                    "Entertain"});
  for (std::size_t c = 0; c < normalized.size(); ++c) {
    table.add_row({"#" + std::to_string(c + 1),
                   region_name(e.labeling().region_of_cluster[c]),
                   format_double(normalized[c][0], 4),
                   format_double(normalized[c][1], 4),
                   format_double(normalized[c][2], 4),
                   format_double(normalized[c][3], 4)});
  }
  std::cout << table.render() << "\n";

  std::cout << "Figure 9 — POI shares per cluster (the paper's pie charts, "
               "as bars):\n\n";
  for (std::size_t c = 0; c < shares.size(); ++c) {
    const auto region = e.labeling().region_of_cluster[c];
    std::vector<std::string> labels;
    std::vector<double> values;
    for (const PoiType t : all_poi_types()) {
      labels.push_back(poi_type_name(t));
      values.push_back(shares[c][static_cast<int>(t)]);
    }
    std::cout << bar_chart(labels, values,
                           "cluster #" + std::to_string(c + 1) + " (" +
                               region_name(region) + ") POI shares",
                           40)
              << "\n";
  }

  // The dominance checks the paper reports.
  auto share_of = [&](FunctionalRegion region, PoiType type) {
    const auto cluster = e.cluster_of_region(region);
    return cluster ? shares[*cluster][static_cast<int>(type)] : 0.0;
  };
  std::cout << "transport POI share in the transport cluster: "
            << format_double(
                   100.0 * share_of(FunctionalRegion::kTransport,
                                    PoiType::kTransport),
                   1)
            << "%   (paper: 44%)\n";
  std::cout << "entertainment POI share in the entertainment cluster: "
            << format_double(
                   100.0 * share_of(FunctionalRegion::kEntertainment,
                                    PoiType::kEntertain),
                   1)
            << "%   (paper: 39%)\n";
  return 0;
}
