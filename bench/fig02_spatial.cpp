// Figure 2 — the spatial distribution of traffic density (bytes/km²) at
// 4 AM, 10 AM, 4 PM and 10 PM: dark city at night, bright at working
// hours, the center hot at all times.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 2", "Spatial traffic density at 4AM / 10AM / 4PM / 10PM");
  const auto& e = experiment();
  const std::size_t rows = 24;
  const std::size_t cols = 48;
  const int day = 3;  // a Thursday

  struct Snapshot {
    int hour;
    const char* label;
  };
  const Snapshot snapshots[] = {
      {4, "(a) 4AM"}, {10, "(b) 10AM"}, {16, "(c) 4PM"}, {22, "(d) 10PM"}};

  double night_total = 0.0;
  double day_total = 0.0;
  DensityGrid::Peak night_peak{};
  for (const auto& snapshot : snapshots) {
    const auto grid = traffic_density_at_hour(e.towers(), e.matrix(), day,
                                              snapshot.hour, e.city().box(),
                                              rows, cols);
    std::cout << heatmap(grid.values(), rows, cols,
                         std::string(snapshot.label) +
                             " — bytes/km² in one hour (log shading)",
                         /*log_scale=*/true)
              << "  total " << sci(grid.total()) << " bytes; peak cell "
              << sci(grid.peak().value) << " bytes\n\n";
    if (snapshot.hour == 4) {
      night_total = grid.total();
      night_peak = grid.peak();
    }
    if (snapshot.hour == 10) day_total = grid.total();

    std::vector<double> flat = grid.values();
    export_series("fig02_" + std::to_string(snapshot.hour) + "h_grid", flat,
                  "bytes_per_cell");
  }

  std::cout << "10AM/4AM city-wide traffic ratio: "
            << format_double(day_total / night_total, 2)
            << "   (paper: the city lights up when people start working)\n";

  // The center stays hot at 4AM (the paper: "towers deployed at the center
  // of the city experience high traffic despite of the time of a day").
  const auto night_grid = traffic_density_at_hour(
      e.towers(), e.matrix(), day, 4, e.city().box(), rows, cols);
  const auto center = e.city().box().center();
  const double center_density = night_grid.density_at(
      night_grid.row_of(center.lat), night_grid.col_of(center.lon));
  const double corner_density = night_grid.density_at(0, 0);
  std::cout << "4AM center density / corner density: "
            << format_double(
                   corner_density > 0.0 ? center_density / corner_density
                                        : center_density,
                   2)
            << " (center stays hot at night)\n";
  std::cout << "\nCSV exported to " << figure_output_dir() << "/fig02_*.csv\n";
  return 0;
}
