// Figure 11 — interrelations between patterns:
//   row 1: resident vs transport — resident evening peak ~3 h after
//          transport's second (evening) peak;
//   row 2: office vs transport — office peak between transport's two;
//   row 3: comprehensive vs the all-tower average — nearly identical.
#include <cmath>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 11", "Interrelationships between the patterns");
  const auto& e = experiment();

  auto normalized_week = [&](const std::vector<double>& series) {
    auto z = max_normalize(series);
    return std::vector<double>(z.begin(), z.begin() + TimeGrid::kSlotsPerWeek);
  };

  const auto resident = e.region_aggregate(FunctionalRegion::kResident);
  const auto transport = e.region_aggregate(FunctionalRegion::kTransport);
  const auto office = e.region_aggregate(FunctionalRegion::kOffice);
  const auto comprehensive =
      e.region_aggregate(FunctionalRegion::kComprehensive);
  const auto total = e.total_aggregate();

  LineChartOptions options;
  options.height = 10;
  options.x_label = "Mon .. Sun (one week, normalized by max)";

  options.title = "row 1: resident vs transport";
  options.series_names = {"resident", "transport"};
  std::cout << line_chart({normalized_week(resident),
                           normalized_week(transport)},
                          options)
            << "\n";

  const auto resident_features = compute_time_features(resident);
  const auto transport_features = compute_time_features(transport);
  std::vector<double> transport_peaks = transport_features.weekday.peak_hours;
  std::sort(transport_peaks.begin(), transport_peaks.end());
  const double evening_rush =
      transport_peaks.empty() ? 18.0 : transport_peaks.back();
  std::cout << "  resident peak " << format_peak_time(
                   resident_features.weekday.peak_hour)
            << " is "
            << format_double(resident_features.weekday.peak_hour - evening_rush,
                             1)
            << " h after transport's evening peak "
            << format_peak_time(evening_rush) << "   (paper: ~3 h)\n\n";

  options.title = "row 2: office vs transport";
  options.series_names = {"office", "transport"};
  std::cout << line_chart({normalized_week(office),
                           normalized_week(transport)},
                          options)
            << "\n";
  const auto office_features = compute_time_features(office);
  std::cout << "  office peak "
            << format_peak_time(office_features.weekday.peak_hour)
            << " lies between transport's peaks "
            << format_peak_time(transport_peaks.front()) << " and "
            << format_peak_time(transport_peaks.back())
            << ": " << std::boolalpha
            << (office_features.weekday.peak_hour > transport_peaks.front() &&
                office_features.weekday.peak_hour < transport_peaks.back())
            << "   (paper: true — commuting encodes the sequence)\n\n";

  options.title = "row 3: comprehensive vs all towers";
  options.series_names = {"comprehensive", "all"};
  std::cout << line_chart({normalized_week(comprehensive),
                           normalized_week(total)},
                          options)
            << "\n";
  std::cout << "  Pearson correlation comprehensive vs all-tower average: "
            << format_double(pearson(comprehensive, total), 3)
            << "   (paper: \"of great similarity\")\n";
  return 0;
}
