// Table 1 — percentage of cell towers classified into each cluster.
// Paper: resident 17.55%, transport 2.58%, office 45.72%, entertainment
// 9.35%, comprehensive 24.81%; office largest, transport smallest.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Table 1", "Percentage of cell towers classified in each cluster");
  const auto& e = experiment();

  const double paper_share[kNumRegions] = {17.55, 2.58, 45.72, 9.35, 24.81};

  TextTable table("Cluster shares (measured vs paper)");
  table.set_header(
      {"cluster", "functional region", "towers", "measured %", "paper %"});
  for (std::size_t c = 0; c < e.n_clusters(); ++c) {
    const auto region = e.labeling().region_of_cluster[c];
    const auto count = e.rows_of_cluster(c).size();
    table.add_row(
        {std::to_string(c + 1), region_name(region), std::to_string(count),
         format_double(100.0 * static_cast<double>(count) /
                           static_cast<double>(e.towers().size()),
                       2),
         format_double(paper_share[static_cast<int>(region)], 2)});
  }
  std::cout << table.render() << "\n";
  std::cout << "label accuracy vs latent ground truth: "
            << format_double(100.0 * e.validation().accuracy, 2) << "%\n";
  return 0;
}
