// Extension — robustness ablation: how the pattern identifier degrades as
// per-slot measurement noise grows. The paper's pipeline must be robust
// to "noisy ... large variation of traffic" (§3.2); this sweep quantifies
// the margin.
#include <iostream>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/timer.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  enable_json_report("ext_noise_robustness");
  banner("Extension: noise robustness",
         "Cluster count and label accuracy vs per-slot noise level");

  auto& runs = obs::MetricsRegistry::instance().counter(
      "cellscope.ext.noise_runs");
  TextTable table("identifier output vs IntensityOptions::noise_cv");
  table.set_header({"noise cv", "clusters found", "label accuracy",
                    "DBI at chosen cut"});
  for (const double noise : {0.05, 0.10, 0.12, 0.15, 0.18, 0.25, 0.40}) {
    obs::StageSpan span("ext.noise_run", "ext", obs::LogLevel::kDebug);
    span.annotate({"noise_cv", noise});
    ExperimentConfig config;
    config.n_towers = 400;
    config.seed = bench_seed();
    config.intensity.noise_cv = noise;
    const auto e = Experiment::run(config);
    runs.add(1);
    span.annotate({"clusters", e.n_clusters()});
    table.add_row({format_double(noise, 2),
                   std::to_string(e.n_clusters()),
                   format_double(100.0 * e.validation().accuracy, 1) + "%",
                   format_double(e.chosen_cut().dbi, 3)});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "reading: the identifier is exact through the calibrated noise "
         "level (0.12); pushed beyond it, the weakest separation — the "
         "comprehensive cluster against its neighbors — collapses first "
         "and the tuner falls back to four patterns. Consistent with the "
         "paper's remark that towers near cluster boundaries live in "
         "mixed-use areas.\n";
  return 0;
}
