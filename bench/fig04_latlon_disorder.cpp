// Figure 4 — normalized one-day traffic of 40 towers sampled across
// latitude (and longitude) bands: peak hours are wildly different across
// towers (the paper reports ~10 h of peak-time variance), motivating
// clustering.
#include <algorithm>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 4",
         "Normalized daily traffic of 40 towers ordered by latitude / "
         "longitude — disorder before clustering");
  const auto& e = experiment();

  auto render_band = [&](bool by_latitude) {
    // Order towers by the coordinate and sample 40 evenly.
    std::vector<std::size_t> order(e.towers().size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return by_latitude
                 ? e.towers()[a].position.lat < e.towers()[b].position.lat
                 : e.towers()[a].position.lon < e.towers()[b].position.lon;
    });
    std::vector<std::size_t> sampled;
    for (std::size_t i = 0; i < 40; ++i)
      sampled.push_back(order[i * order.size() / 40]);

    // Build the 40 x 144 heatmap of normalized mean weekdays.
    std::vector<double> cells;
    cells.reserve(40 * TimeGrid::kSlotsPerDay);
    std::vector<double> peak_hours;
    for (const auto row : sampled) {
      const auto features = compute_time_features(e.matrix().rows[row]);
      const auto normalized = max_normalize(features.weekday.mean_day);
      peak_hours.push_back(features.weekday.peak_hour);
      for (const double v : normalized) cells.push_back(v);
    }
    std::cout << heatmap(cells, 40, TimeGrid::kSlotsPerDay,
                         std::string("(") + (by_latitude ? "a" : "b") +
                             ") towers ordered by " +
                             (by_latitude ? "latitude" : "longitude") +
                             " — hour of day runs left to right")
              << "\n";

    // The paper: ~10 h variance in peak hours.
    const double lo = quantile(peak_hours, 0.05);
    const double hi = quantile(peak_hours, 0.95);
    std::cout << "  peak-hour 5th..95th percentile spread: "
              << format_double(hi - lo, 1) << " hours (paper: ~10 h)\n\n";
    export_series(by_latitude ? "fig04a_peak_hours_by_lat"
                              : "fig04b_peak_hours_by_lon",
                  peak_hours, "peak_hour");
  };

  render_band(true);
  render_band(false);
  std::cout << "CSV exported to " << figure_output_dir() << "/fig04*.csv\n";
  return 0;
}
