// Figure 13 — the variance across towers of the DFT amplitude at each
// frequency: the three principal components (k = 4, 28, 56) have by far
// the highest variance, i.e. they are the discriminating features between
// traffic patterns.
#include <algorithm>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 13",
         "Variance of per-tower DFT amplitude at each frequency");
  const auto& e = experiment();
  const auto variance_spectrum =
      amplitude_variance_spectrum(e.zscored(), 100);

  std::vector<double> plot(variance_spectrum.begin() + 1,
                           variance_spectrum.end());
  LineChartOptions options;
  options.title = "variance of amplitude across towers, k = 1..100";
  options.x_label = "frequency index k";
  options.height = 12;
  std::cout << line_chart(plot, options) << "\n";

  // Rank the frequencies by variance.
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t k = 1; k <= 100; ++k)
    ranked.emplace_back(variance_spectrum[k], k);
  std::sort(ranked.rbegin(), ranked.rend());
  std::cout << "top-5 most discriminating frequencies: ";
  for (int i = 0; i < 5; ++i) std::cout << "k=" << ranked[i].second << " ";
  std::cout << "\n(paper: the three principal components k=4, 28, 56 "
               "dominate; daily harmonics like k=84 are also strong in "
               "spiky synthetic profiles)\n\n";

  for (const std::size_t k :
       {kWeeklyComponent, kDailyComponent, kHalfDailyComponent}) {
    const bool peak = variance_spectrum[k] > variance_spectrum[k - 1] &&
                      variance_spectrum[k] > variance_spectrum[k + 1];
    std::cout << "  k=" << k
              << ": variance = " << format_double(variance_spectrum[k], 4)
              << (peak ? "  (local peak ✓)" : "") << "\n";
  }

  export_series("fig13_variance_spectrum", variance_spectrum, "variance");
  std::cout << "\nCSV exported to " << figure_output_dir()
            << "/fig13_variance_spectrum.csv\n";
  return 0;
}
