// Extension — event detection on tower traffic: inject synthetic events
// (flash crowds, outages) into held-out weeks and measure the detector's
// precision/recall across event magnitudes.
#include <iostream>

#include "bench_common.h"
#include "forecast/anomaly.h"
#include "obs/metrics.h"
#include "obs/timer.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  enable_json_report("ext_anomaly_events");
  banner("Extension: anomaly detection",
         "Precision/recall of the per-slot-of-week detector on injected "
         "events");
  const auto& e = experiment();
  Rng rng(4242);

  const std::size_t train = 3 * TimeGrid::kSlotsPerWeek;
  const std::size_t test = TimeGrid::kSlotsPerWeek;
  const std::size_t sample = std::min<std::size_t>(e.matrix().n(), 150);

  TextTable table("detection quality by event magnitude");
  table.set_header({"event", "injected", "detected", "false alarms",
                    "recall", "precision"});

  auto& registry = obs::MetricsRegistry::instance();
  for (const auto& [factor, label] :
       {std::pair{3.0, "flash crowd x3"}, std::pair{2.0, "surge x2"},
        std::pair{0.0, "outage (zero traffic)"}}) {
    obs::StageSpan span("ext.anomaly_sweep", "ext", obs::LogLevel::kDebug);
    span.annotate({"event", label});
    std::size_t injected = 0;
    std::size_t detected = 0;
    std::size_t false_alarms = 0;

    for (std::size_t row = 0; row < sample; ++row) {
      const auto& series = e.matrix().rows[row];
      const std::span<const double> history(series.data(), train);
      std::vector<double> week(series.begin() + train,
                               series.begin() + train + test);

      // Inject one 2-hour event at a random position for half the towers.
      const bool has_event = row % 2 == 0;
      std::size_t begin = 0;
      if (has_event) {
        begin = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(test) - 13));
        for (std::size_t s = begin; s < begin + 12; ++s) week[s] *= factor;
        ++injected;
      }

      const TrafficAnomalyDetector detector(history);
      const auto anomalies = detector.detect(week);
      bool hit = false;
      for (const auto& a : anomalies) {
        const bool overlaps =
            has_event && a.begin_slot < begin + 12 && a.end_slot > begin;
        if (overlaps) hit = true;
        else ++false_alarms;
      }
      if (hit) ++detected;
    }

    registry.counter("cellscope.ext.anomaly_injected").add(injected);
    registry.counter("cellscope.ext.anomaly_detected").add(detected);
    registry.counter("cellscope.ext.anomaly_false_alarms").add(false_alarms);
    span.annotate({"injected", injected});
    span.annotate({"detected", detected});

    const double recall =
        injected ? static_cast<double>(detected) / injected : 0.0;
    const double precision =
        detected + false_alarms
            ? static_cast<double>(detected) / (detected + false_alarms)
            : 1.0;
    table.add_row({label, std::to_string(injected),
                   std::to_string(detected), std::to_string(false_alarms),
                   format_double(recall, 3), format_double(precision, 3)});
  }
  std::cout << table.render() << "\n";
  std::cout << "the detector models each slot-of-week from 3 weeks of "
               "history; outages and 2-3x surges are caught with near-"
               "perfect recall at high precision.\n";
  return 0;
}
