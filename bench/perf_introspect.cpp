// Perf: introspection-plane overhead. Not part of the regression gate —
// this bench exists to *measure* the cost of the observability features
// against the tracing-off baseline, so the numbers in DESIGN.md §7 stay
// honest:
//   - streaming replay with record tracing off vs sampled (1-in-1024,
//     1-in-64) vs every record — the tracing-off case must match the
//     gated perf_stream throughput;
//   - one Prometheus /metrics render and one /stream status render, the
//     per-scrape cost a polling collector pays.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/time_grid.h"
#include "mapred/thread_pool.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace_sample.h"
#include "stream/ingestor.h"
#include "stream/replay.h"

namespace {

using namespace cellscope;

std::vector<TrafficLog> synthetic_logs(std::size_t n_records,
                                       std::uint32_t n_towers) {
  static std::vector<TrafficLog> cache;
  static std::size_t cached_records = 0;
  if (cached_records == n_records) return cache;
  Rng rng(4321);
  std::vector<TrafficLog> logs;
  logs.reserve(n_records);
  constexpr std::uint64_t kGridMinutes =
      TimeGrid::kSlots * TimeGrid::kSlotMinutes;
  for (std::size_t i = 0; i < n_records; ++i) {
    TrafficLog log;
    log.user_id = static_cast<std::uint64_t>(rng.uniform_int(0, 99999));
    log.tower_id = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_towers) - 1));
    const auto base = i * kGridMinutes / n_records;
    log.start_minute = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kGridMinutes - 1,
                                base + static_cast<std::uint64_t>(
                                           rng.uniform_int(0, 30))));
    log.end_minute = log.start_minute +
                     static_cast<std::uint32_t>(rng.uniform_int(0, 15));
    log.bytes = static_cast<std::uint64_t>(rng.uniform_int(100, 200000));
    logs.push_back(log);
  }
  cache = std::move(logs);
  cached_records = n_records;
  return cache;
}

/// Replay throughput at a given record-sampling rate (0 = tracing off).
void BM_ReplayWithSampling(benchmark::State& state) {
  const auto sample_every = static_cast<std::uint32_t>(state.range(0));
  const auto n_towers =
      static_cast<std::uint32_t>(cellscope::bench::bench_towers());
  const auto logs = synthetic_logs(1'000'000, n_towers);
  ThreadPool pool(default_thread_count());
  auto& sampler = obs::TraceSampler::instance();
  const auto saved = sampler.sample_every();
  sampler.set_sample_every(sample_every);
  for (auto _ : state) {
    StreamIngestor ingestor(
        StreamConfig{.n_shards = 4, .queue_capacity = 0});
    ReplayOptions options;
    options.batch_size = 16384;
    const auto stats = replay_trace(logs, ingestor, pool, options);
    benchmark::DoNotOptimize(stats.ingest.accepted);
    state.PauseTiming();
    obs::StageTrace::instance().clear();  // re-arm the retention cap
    state.ResumeTiming();
  }
  sampler.set_sample_every(saved);
  state.SetItemsProcessed(static_cast<std::int64_t>(logs.size()) *
                          state.iterations());
}
// 0 = off (must match gated perf_stream), then 1-in-1024, 1-in-64, every.
BENCHMARK(BM_ReplayWithSampling)->Arg(0)->Arg(1024)->Arg(64)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Prometheus text render — the per-scrape cost of GET /metrics.
void BM_PrometheusSnapshot(benchmark::State& state) {
  auto& registry = obs::MetricsRegistry::instance();
  // Populate a realistic registry shape once.
  for (int i = 0; i < 20; ++i)
    registry.counter("bench.introspect.counter" + std::to_string(i)).add(i);
  auto& hist = registry.histogram("bench.introspect.hist");
  for (int i = 0; i < 1000; ++i) hist.observe(static_cast<double>(i % 50));
  for (auto _ : state) {
    auto text = registry.snapshot_prometheus();
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_PrometheusSnapshot)->Unit(benchmark::kMicrosecond);

/// /stream status render against a loaded ingestor.
void BM_StreamStatusJson(benchmark::State& state) {
  const auto n_towers =
      static_cast<std::uint32_t>(cellscope::bench::bench_towers());
  const auto logs = synthetic_logs(1'000'000, n_towers);
  ThreadPool pool(default_thread_count());
  StreamIngestor ingestor(StreamConfig{.n_shards = 4, .queue_capacity = 0});
  ingestor.offer_batch(logs);
  ingestor.drain(pool);
  for (auto _ : state) {
    auto json = ingestor.status_json();
    benchmark::DoNotOptimize(json);
  }
}
BENCHMARK(BM_StreamStatusJson)->Unit(benchmark::kMicrosecond);

}  // namespace

CELLSCOPE_BENCH_JSON("perf_introspect");
