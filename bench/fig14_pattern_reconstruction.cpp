// Figure 14 — per-pattern aggregate traffic reconstructed from the three
// principal frequency components, plus the per-pattern spectra: the
// reconstruction tracks the original, and the spectra differ most at
// k = 4, 28, 56.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 14",
         "Reconstructed per-pattern traffic and per-pattern spectra");
  const auto& e = experiment();

  std::vector<std::vector<double>> spectra;
  std::vector<std::string> names;
  for (const auto region :
       {FunctionalRegion::kResident, FunctionalRegion::kTransport,
        FunctionalRegion::kOffice, FunctionalRegion::kEntertainment}) {
    const auto aggregate = e.region_aggregate(region);
    const Spectrum spectrum(aggregate);
    const auto reconstructed = spectrum.reconstruct_principal();

    std::vector<double> original_week(
        aggregate.begin(), aggregate.begin() + TimeGrid::kSlotsPerWeek);
    std::vector<double> reconstructed_week(
        reconstructed.begin(),
        reconstructed.begin() + TimeGrid::kSlotsPerWeek);
    LineChartOptions options;
    options.title = region_name(region) + " — original vs 3-component "
                    "reconstruction (first week)";
    options.series_names = {"original", "reconstructed"};
    options.height = 9;
    std::cout << line_chart({original_week, reconstructed_week}, options);
    std::cout << "  energy loss "
              << format_double(100.0 * energy_loss(aggregate, reconstructed),
                               1)
              << "%, correlation "
              << format_double(pearson(aggregate, reconstructed), 3)
              << "\n\n";

    std::vector<double> amplitude;
    for (std::size_t k = 1; k <= 100; ++k)
      amplitude.push_back(spectrum.amplitude(k));
    spectra.push_back(max_normalize(amplitude));
    names.push_back(region_name(region));
  }

  LineChartOptions spec_options;
  spec_options.title =
      "per-pattern amplitude spectra (each normalized by its max), k=1..100";
  spec_options.series_names = names;
  spec_options.x_label = "frequency index k";
  spec_options.height = 12;
  std::cout << line_chart(spectra, spec_options) << "\n";
  std::cout << "paper: the four spectra differ most at the three principal "
               "components — transport's k=56 (half-day) stands out, "
               "office's k=4 (week) is the strongest weekly line.\n";

  export_columns("fig14_spectra", names, spectra);
  std::cout << "CSV exported to " << figure_output_dir()
            << "/fig14_spectra.csv\n";
  return 0;
}
