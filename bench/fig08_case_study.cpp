// Figure 8 — micro-scale validation: take two map areas, color them by
// the ground-truth functional region (from the city model's intensity
// fields), overlay the towers' *traffic-derived* cluster labels, and check
// that labels match the underlying functional regions.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 8",
         "Case studies: tower labels vs ground-truth functional regions in "
         "two map areas");
  const auto& e = experiment();

  // Area A: around the CBD. Area B: around a residential neighborhood.
  const auto office_center =
      e.city().hotspots(FunctionalRegion::kOffice).front().center;
  const auto resident_center =
      e.city().hotspots(FunctionalRegion::kResident).front().center;

  char region_glyphs[kNumRegions];
  region_glyphs[static_cast<int>(FunctionalRegion::kResident)] = 'r';
  region_glyphs[static_cast<int>(FunctionalRegion::kTransport)] = 't';
  region_glyphs[static_cast<int>(FunctionalRegion::kOffice)] = 'o';
  region_glyphs[static_cast<int>(FunctionalRegion::kEntertainment)] = 'e';
  region_glyphs[static_cast<int>(FunctionalRegion::kComprehensive)] = '.';

  int areas_checked = 0;
  double total_match = 0.0;
  std::size_t total_towers = 0;

  for (const auto [center, label] :
       {std::pair{office_center, "Area A (business district)"},
        std::pair{resident_center, "Area B (residential neighborhood)"}}) {
    ++areas_checked;
    const double half_deg_lat = 2.5 / km_per_degree_lat();
    const double half_deg_lon = 2.5 / km_per_degree_lon(center.lat);
    const BoundingBox area{center.lat - half_deg_lat,
                           center.lat + half_deg_lat,
                           center.lon - half_deg_lon,
                           center.lon + half_deg_lon};

    // Background: ground-truth region at each map cell (lowercase glyph);
    // overlay towers with their traffic label (uppercase glyph).
    const std::size_t rows = 16;
    const std::size_t cols = 48;
    std::vector<std::string> canvas(rows, std::string(cols, ' '));
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t col = 0; col < cols; ++col) {
        const LatLon p{
            area.lat_min + (static_cast<double>(r) + 0.5) / rows *
                               (area.lat_max - area.lat_min),
            area.lon_min + (static_cast<double>(col) + 0.5) / cols *
                               (area.lon_max - area.lon_min)};
        canvas[rows - 1 - r][col] =
            region_glyphs[static_cast<int>(e.city().region_at(p))];
      }
    }

    std::size_t matches = 0;
    std::size_t towers_in_area = 0;
    for (std::size_t i = 0; i < e.towers().size(); ++i) {
      const auto& tower = e.towers()[i];
      if (!area.contains(tower.position)) continue;
      ++towers_in_area;
      const auto labeled =
          e.labeling().region_of_cluster[static_cast<std::size_t>(
              e.labels()[i])];
      if (labeled == tower.true_region) ++matches;
      const auto r = static_cast<std::size_t>(
          (tower.position.lat - area.lat_min) /
          (area.lat_max - area.lat_min) * rows);
      const auto col = static_cast<std::size_t>(
          (tower.position.lon - area.lon_min) /
          (area.lon_max - area.lon_min) * cols);
      if (r < rows && col < cols)
        canvas[rows - 1 - r][col] = static_cast<char>(
            std::toupper(region_glyphs[static_cast<int>(labeled)]));
    }

    std::cout << label << " — 5 km x 5 km\n"
              << "  background = ground-truth region (r/t/o/e/.), "
                 "UPPERCASE = tower's traffic-derived label\n";
    for (const auto& line : canvas) std::cout << "  |" << line << "|\n";
    std::cout << "  towers in area: " << towers_in_area
              << ", label matches ground truth: " << matches << " ("
              << format_double(towers_in_area
                                   ? 100.0 * static_cast<double>(matches) /
                                         static_cast<double>(towers_in_area)
                                   : 0.0,
                               1)
              << "%)\n\n";
    total_match += static_cast<double>(matches);
    total_towers += towers_in_area;
  }

  std::cout << "overall case-study match: "
            << format_double(100.0 * total_match /
                                 static_cast<double>(total_towers),
                             1)
            << "%   (paper: \"labels exactly match the functional "
               "regions\")\n";
  return 0;
}
