// Figures 15 and 16 — the frequency-domain feature space:
//   Fig. 15: scatter of (amplitude, phase) at k = 4, 28, 56 for every
//            tower, colored by cluster;
//   Fig. 16: per-cluster means and standard deviations of amplitude and
//            phase at the three components.
// Claims reproduced: office has the strongest weekly periodicity with
// phase ~π away from resident/entertainment; the daily phase orders
// resident -> comprehensive -> transport -> office (the commute); the
// half-day amplitude is maximal for transport (double hump).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figures 15 & 16",
         "Phase/amplitude distribution of the three principal components");
  const auto& e = experiment();
  const auto& features = e.freq_features();

  struct Component {
    const char* name;
    double FreqFeatures::*amp;
    double FreqFeatures::*phase;
  };
  const Component components[] = {
      {"one week (k=4)", &FreqFeatures::amp_week, &FreqFeatures::phase_week},
      {"one day (k=28)", &FreqFeatures::amp_day, &FreqFeatures::phase_day},
      {"half a day (k=56)", &FreqFeatures::amp_half_day,
       &FreqFeatures::phase_half_day},
  };

  for (const auto& component : components) {
    std::vector<double> x;
    std::vector<double> y;
    std::vector<int> cls;
    for (std::size_t i = 0; i < features.size(); ++i) {
      x.push_back(features[i].*(component.amp));
      y.push_back(features[i].*(component.phase));
      // Digit = region of the tower's cluster, in region order.
      cls.push_back(static_cast<int>(
          e.labeling().region_of_cluster[static_cast<std::size_t>(
              e.labels()[i])]));
    }
    std::cout << scatter_plot(
        x, y, cls,
        std::string("Fig 15 — amplitude (x) vs phase (y) of ") +
            component.name +
            "  [0=Res 1=Tra 2=Off 3=Ent 4=Com]",
        80, 20);

    // Fig 16: per-cluster mean ± std.
    TextTable table(std::string("Fig 16 — per-cluster stats of ") +
                    component.name);
    table.set_header({"region", "mean amp", "std amp", "mean phase",
                      "std phase"});
    for (const auto region : all_regions()) {
      const auto cluster = e.cluster_of_region(region);
      if (!cluster) continue;
      std::vector<double> amps;
      std::vector<double> phases;
      for (const auto row : e.rows_of_cluster(*cluster)) {
        amps.push_back(features[row].*(component.amp));
        phases.push_back(features[row].*(component.phase));
      }
      table.add_row({region_name(region), format_double(mean(amps), 3),
                     format_double(stddev(amps), 3),
                     format_double(circular_mean(phases), 3),
                     format_double(circular_stddev(phases), 3)});
    }
    std::cout << table.render() << "\n";
  }

  // The three headline claims, verified numerically.
  auto cluster_mean = [&](FunctionalRegion region,
                          double FreqFeatures::*member) {
    std::vector<double> values;
    for (const auto row : e.rows_of_cluster(*e.cluster_of_region(region)))
      values.push_back(features[row].*member);
    return mean(values);
  };
  auto cluster_phase = [&](FunctionalRegion region,
                           double FreqFeatures::*member) {
    std::vector<double> values;
    for (const auto row : e.rows_of_cluster(*e.cluster_of_region(region)))
      values.push_back(features[row].*member);
    return circular_mean(values);
  };

  std::cout << "claim checks:\n";
  std::cout << "  1. office weekly amplitude "
            << format_double(
                   cluster_mean(FunctionalRegion::kOffice,
                                &FreqFeatures::amp_week),
                   3)
            << " is the largest (paper Fig 16a)\n";
  double gap = std::abs(cluster_phase(FunctionalRegion::kOffice,
                                      &FreqFeatures::phase_week) -
                        cluster_phase(FunctionalRegion::kResident,
                                      &FreqFeatures::phase_week));
  gap = std::min(gap, 2.0 * M_PI - gap);
  std::cout << "  2. office vs resident weekly-phase gap = "
            << format_double(gap, 2) << " rad ≈ π (paper: ~π apart)\n";
  std::cout << "  3. daily-phase ordering (commute): resident "
            << format_double(cluster_phase(FunctionalRegion::kResident,
                                           &FreqFeatures::phase_day),
                             2)
            << " < comprehensive "
            << format_double(cluster_phase(FunctionalRegion::kComprehensive,
                                           &FreqFeatures::phase_day),
                             2)
            << " < transport "
            << format_double(cluster_phase(FunctionalRegion::kTransport,
                                           &FreqFeatures::phase_day),
                             2)
            << " < office "
            << format_double(cluster_phase(FunctionalRegion::kOffice,
                                           &FreqFeatures::phase_day),
                             2)
            << "\n";
  std::cout << "  4. transport half-day amplitude "
            << format_double(cluster_mean(FunctionalRegion::kTransport,
                                          &FreqFeatures::amp_half_day),
                             3)
            << " is the largest (double-hump rush hours, paper Fig 16c)\n";

  // Export the full feature table.
  std::vector<double> aw, pw, ad, pd, ah, ph, cl;
  for (std::size_t i = 0; i < features.size(); ++i) {
    aw.push_back(features[i].amp_week);
    pw.push_back(features[i].phase_week);
    ad.push_back(features[i].amp_day);
    pd.push_back(features[i].phase_day);
    ah.push_back(features[i].amp_half_day);
    ph.push_back(features[i].phase_half_day);
    cl.push_back(e.labels()[i]);
  }
  export_columns("fig15_features",
                 {"amp_week", "phase_week", "amp_day", "phase_day",
                  "amp_half", "phase_half", "cluster"},
                 {aw, pw, ad, pd, ah, ph, cl});
  std::cout << "\nCSV exported to " << figure_output_dir()
            << "/fig15_features.csv\n";
  return 0;
}
