// Figure 3 — normalized one-day traffic of four residential towers vs four
// business-district towers: residential traffic has two peaks and stays
// high at night; office traffic has one midday peak and dies at night.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 3",
         "Normalized profiles: 4 residential vs 4 business-district towers");
  const auto& e = experiment();

  auto pick_towers = [&](FunctionalRegion region) {
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < e.towers().size() && rows.size() < 4; ++i)
      if (e.towers()[i].true_region == region) rows.push_back(i);
    return rows;
  };

  auto day_profile = [&](std::size_t row) {
    // Mean weekday, normalized by its maximum (the paper's normalization).
    const auto features = compute_time_features(e.matrix().rows[row]);
    return max_normalize(features.weekday.mean_day);
  };

  for (const auto [region, label] :
       {std::pair{FunctionalRegion::kResident, "Residential towers"},
        std::pair{FunctionalRegion::kOffice, "Business-district towers"}}) {
    const auto rows = pick_towers(region);
    std::vector<std::vector<double>> series;
    std::vector<std::string> names;
    for (const auto row : rows) {
      series.push_back(day_profile(row));
      names.push_back("tower " + std::to_string(e.matrix().tower_ids[row]));
    }
    LineChartOptions options;
    options.title = std::string(label) + " — normalized mean weekday";
    options.series_names = names;
    options.x_label = "hour of day 0..24";
    options.height = 12;
    std::cout << line_chart(series, options) << "\n";

    // Night level: mean normalized traffic 1:00-5:00.
    double night = 0.0;
    std::size_t count = 0;
    for (const auto& s : series) {
      for (int slot = 6; slot < 30; ++slot) {
        night += s[static_cast<std::size_t>(slot)];
        ++count;
      }
    }
    std::cout << "  mean normalized night traffic (1:00-5:00): "
              << format_double(night / static_cast<double>(count), 3) << "\n\n";

    std::vector<std::string> columns = {"slot"};
    std::vector<std::vector<double>> data;
    std::vector<double> index(series[0].size());
    for (std::size_t i = 0; i < index.size(); ++i)
      index[i] = static_cast<double>(i);
    data.push_back(index);
    for (std::size_t i = 0; i < series.size(); ++i) {
      columns.push_back(names[i]);
      data.push_back(series[i]);
    }
    export_columns(region == FunctionalRegion::kResident
                       ? "fig03_residential"
                       : "fig03_business",
                   columns, data);
  }

  std::cout << "Paper's contrast: residential = two peaks + high night; "
               "office = one midday peak + near-zero night.\n";
  std::cout << "CSV exported to " << figure_output_dir() << "/fig03_*.csv\n";
  return 0;
}
