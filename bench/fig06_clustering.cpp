// Figure 6 — the pattern identifier's output:
//   (a) Davies-Bouldin index across clustering cuts (minimum at 5),
//   (b) per-cluster CDF of member distance to the cluster centroid,
//   (c)-(g) the five cluster-mean traffic patterns.
#include <iostream>

#include "bench_common.h"
#include "pipeline/traffic_matrix.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 6", "DBI sweep, distance CDFs, and the five patterns");
  const auto& e = experiment();

  // (a) The metric tuner's sweep.
  TextTable sweep_table("(a) Davies-Bouldin index vs clustering cut");
  sweep_table.set_header({"k", "stop threshold", "DBI", "note"});
  for (const auto& point : e.dbi_sweep_result()) {
    std::string note;
    if (!point.valid) note = "rejected (cluster below noise floor)";
    if (point.k == e.chosen_cut().k) note = "<- chosen (minimum DBI)";
    sweep_table.add_row({std::to_string(point.k),
                         format_double(point.threshold, 2),
                         format_double(point.dbi, 4), note});
  }
  std::cout << sweep_table.render();
  std::cout << "paper: DBI minimized at five clusters (threshold 16.33 on "
               "their 4032-dim scale)\n\n";

  // (b) CDF of distance to centroid, per cluster, in the clustering space.
  const auto folded = fold_to_week(e.zscored());
  const auto centroids = cluster_centroids(folded, e.labels());
  std::vector<std::vector<double>> cdf_series;
  std::vector<std::string> cdf_names;
  for (std::size_t c = 0; c < e.n_clusters(); ++c) {
    std::vector<double> distances;
    for (const auto row : e.rows_of_cluster(c))
      distances.push_back(euclidean_distance(folded[row], centroids[c]));
    const auto cdf = empirical_cdf(distances, 48);
    std::vector<double> f;
    for (const auto& [x, p] : cdf) f.push_back(p);
    cdf_series.push_back(std::move(f));
    cdf_names.push_back("#" + std::to_string(c + 1) + " " +
                        region_name(e.labeling().region_of_cluster[c]));
    std::cout << "  cluster #" << c + 1 << " ("
              << region_name(e.labeling().region_of_cluster[c])
              << "): 80th-percentile distance "
              << format_double(quantile(distances, 0.8), 2) << "\n";
  }
  LineChartOptions cdf_options;
  cdf_options.title = "(b) CDF of member distance to centroid (x spans each "
                      "cluster's min..max)";
  cdf_options.series_names = cdf_names;
  cdf_options.height = 10;
  std::cout << "\n" << line_chart(cdf_series, cdf_options) << "\n";

  // (c)-(g) The five patterns: cluster-mean z-scored traffic, one week.
  for (std::size_t c = 0; c < e.n_clusters(); ++c) {
    const auto aggregate = e.cluster_aggregate(c);
    const auto z = zscore(aggregate);
    std::vector<double> week(z.begin(), z.begin() + TimeGrid::kSlotsPerWeek);
    LineChartOptions options;
    options.title = "(" + std::string(1, static_cast<char>('c' + c)) +
                    ") pattern #" + std::to_string(c + 1) + ": " +
                    region_name(e.labeling().region_of_cluster[c]) +
                    " (one week, z-scored)";
    options.x_label = "Mon .. Sun";
    options.height = 9;
    std::cout << line_chart(week, options) << "\n";
    export_series("fig06_pattern" + std::to_string(c + 1), week, "zscore");
  }

  std::cout << "CSV exported to " << figure_output_dir() << "/fig06_*.csv\n";
  return 0;
}
