// Table 6 — the §5.3 validation: for the four most representative towers
// (F1..F4) and a selection of comprehensive-area towers (P1..P5), compare
// the convex-combination coefficients (from the simplex-constrained least
// squares in frequency space) against the POI-derived NTF-IDF. Agreement
// pattern: representative towers decompose onto themselves; for
// comprehensive towers, near-zero coefficients co-occur with near-zero
// NTF-IDF of the same function.
#include <algorithm>
#include <iostream>

#include "analysis/poi_features.h"
#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Table 6", "Convex-combination coefficients vs NTF-IDF");
  const auto& e = experiment();
  const auto& features = e.freq_features();
  const auto& reps = e.representatives();
  const auto tower_ntf_idf = ntf_idf(e.poi_counts());

  std::array<std::array<double, 3>, 4> primaries;
  for (int r = 0; r < 4; ++r) primaries[r] = features[reps[r]].qp_feature();

  TextTable table("coefficients | NTF-IDF (columns: Res, Tra, Off, Ent)");
  table.set_header({"tower", "c1", "c2", "c3", "c4", "n1", "n2", "n3",
                    "n4"});

  auto add_row = [&](const std::string& name, std::size_t row) {
    const auto d = decompose_feature(features[row].qp_feature(), primaries);
    std::vector<std::string> cells = {name};
    for (int i = 0; i < 4; ++i)
      cells.push_back(format_double(d.coefficients[i], 2));
    for (int i = 0; i < 4; ++i)
      cells.push_back(format_double(tower_ntf_idf[row][i], 2));
    table.add_row(cells);
    return d;
  };

  // F1..F4: the representative towers themselves.
  for (int r = 0; r < 4; ++r)
    add_row("F" + std::to_string(r + 1), reps[r]);

  // P1..P5: five comprehensive towers. The paper "dedicatedly selects" its
  // list; we do the same for diversity — for each component, the
  // comprehensive tower with the largest coefficient on it, plus the
  // POI-richest tower.
  const auto comprehensive_rows = e.rows_of_cluster(
      *e.cluster_of_region(FunctionalRegion::kComprehensive));
  std::vector<std::size_t> p_rows;
  for (int component = 0; component < 4; ++component) {
    std::size_t best = comprehensive_rows.front();
    double best_value = -1.0;
    for (const auto row : comprehensive_rows) {
      const auto d =
          decompose_feature(features[row].qp_feature(), primaries);
      if (d.coefficients[component] > best_value &&
          std::find(p_rows.begin(), p_rows.end(), row) == p_rows.end()) {
        best_value = d.coefficients[component];
        best = row;
      }
    }
    p_rows.push_back(best);
  }
  {
    std::size_t richest = comprehensive_rows.front();
    std::size_t richest_total = 0;
    for (const auto row : comprehensive_rows) {
      if (std::find(p_rows.begin(), p_rows.end(), row) != p_rows.end())
        continue;
      std::size_t total = 0;
      for (int i = 0; i < 4; ++i) total += e.poi_counts()[row][i];
      if (total > richest_total) {
        richest_total = total;
        richest = row;
      }
    }
    p_rows.push_back(richest);
  }
  std::vector<Decomposition> p_decompositions;
  for (std::size_t i = 0; i < p_rows.size(); ++i)
    p_decompositions.push_back(
        add_row("P" + std::to_string(i + 1), p_rows[i]));

  std::cout << table.render() << "\n";

  // Check 1: representative towers decompose onto themselves.
  std::cout << "check 1 — every F_i has coefficient ~1 on its own "
               "component:\n";
  for (int r = 0; r < 4; ++r) {
    const auto d = decompose_feature(features[reps[r]].qp_feature(),
                                     primaries);
    std::cout << "  F" << r + 1 << ": own coefficient "
              << format_double(d.coefficients[r], 3) << "\n";
  }

  // Check 2 — the paper's §5.3 consistency argument, per type: "the
  // majority of the smallest NTF-IDF_i in all m for some fixed i
  // corresponds to the smallest coefficient in all m for the same i".
  // With zeros ties are common, so compare the argmin *sets*.
  std::size_t consistent_types = 0;
  for (int type = 0; type < 4; ++type) {
    double min_ntf = 1e18;
    double min_coefficient = 1e18;
    for (std::size_t i = 0; i < p_rows.size(); ++i) {
      min_ntf = std::min(min_ntf, tower_ntf_idf[p_rows[i]][type]);
      min_coefficient =
          std::min(min_coefficient, p_decompositions[i].coefficients[type]);
    }
    bool overlap = false;
    for (std::size_t i = 0; i < p_rows.size(); ++i) {
      const bool ntf_minimal =
          tower_ntf_idf[p_rows[i]][type] <= min_ntf + 1e-9;
      const bool coefficient_minimal =
          p_decompositions[i].coefficients[type] <= min_coefficient + 1e-9;
      if (ntf_minimal && coefficient_minimal) overlap = true;
    }
    if (overlap) ++consistent_types;
  }
  std::cout << "\ncheck 2 — for " << consistent_types
            << "/4 POI types, a tower with the smallest NTF-IDF also has "
               "the smallest coefficient (paper: the small entries "
               "coincide)\n";

  // Check 3: coefficients correlate with the latent traffic mixture.
  std::cout << "\ncheck 3 — coefficients vs the generator's latent mixture "
               "(the synthetic ground truth the paper lacks):\n";
  for (std::size_t i = 0; i < p_rows.size(); ++i) {
    const auto& latent =
        e.intensity().model(e.matrix().tower_ids[p_rows[i]]).mixture;
    std::cout << "  P" << i + 1 << " coeffs:";
    for (const double c : p_decompositions[i].coefficients)
      std::cout << " " << format_double(c, 2);
    std::cout << "  latent:";
    for (const double c : latent) std::cout << " " << format_double(c, 2);
    std::cout << "\n";
  }
  return 0;
}
