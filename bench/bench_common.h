// Shared plumbing for the figure/table reproduction harnesses.
//
// Every bench works from the same deterministic Experiment so numbers are
// comparable across binaries. Scale and seed can be overridden with the
// CELLSCOPE_TOWERS / CELLSCOPE_SEED environment variables; figure CSVs
// land in the directory reported by figure_output_dir(). Perf benches
// additionally write a machine-readable BENCH_<name>.json (wall time,
// pipeline stage spans, metrics snapshot) via CELLSCOPE_BENCH_JSON so the
// perf trajectory is trackable across commits.
#pragma once

#include <string>

#include "core/cellscope.h"

namespace cellscope::bench {

/// Tower count for benches (CELLSCOPE_TOWERS, default 800).
std::size_t bench_towers();

/// Seed for benches (CELLSCOPE_SEED, default 2015).
std::uint64_t bench_seed();

/// The shared experiment (built once per process).
const Experiment& experiment();

/// Prints the standard bench banner naming the paper artifact.
void banner(const std::string& artifact, const std::string& description);

/// "X.XXe+08"-style compact scientific formatting for byte counts.
std::string sci(double v);

/// Writes BENCH_<name>.json — the run-report schema of obs/report.h:
/// build identity, config, stage spans, metrics snapshot (with
/// percentiles), and quality verdicts — into the current directory
/// (or $CELLSCOPE_BENCH_DIR). Returns the path written. bench_compare
/// diffs these against bench/baselines/ (scripts/check_perf.sh).
std::string report_json(const std::string& name);

/// Enables stage-span recording and registers an atexit hook that calls
/// report_json(name) when the process exits. This is how google-benchmark
/// binaries (whose main() we don't own) emit their report.
void enable_json_report(const std::string& name);

/// Put one of these at namespace scope in a perf_* bench.
#define CELLSCOPE_BENCH_JSON(name)                                  \
  [[maybe_unused]] static const bool cellscope_bench_json_enabled = \
      (::cellscope::bench::enable_json_report(name), true)

}  // namespace cellscope::bench
