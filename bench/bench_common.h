// Shared plumbing for the figure/table reproduction harnesses.
//
// Every bench works from the same deterministic Experiment so numbers are
// comparable across binaries. Scale and seed can be overridden with the
// CELLSCOPE_TOWERS / CELLSCOPE_SEED environment variables; figure CSVs
// land in the directory reported by figure_output_dir().
#pragma once

#include <string>

#include "core/cellscope.h"

namespace cellscope::bench {

/// Tower count for benches (CELLSCOPE_TOWERS, default 800).
std::size_t bench_towers();

/// Seed for benches (CELLSCOPE_SEED, default 2015).
std::uint64_t bench_seed();

/// The shared experiment (built once per process).
const Experiment& experiment();

/// Prints the standard bench banner naming the paper artifact.
void banner(const std::string& artifact, const std::string& description);

/// "X.XXe+08"-style compact scientific formatting for byte counts.
std::string sci(double v);

}  // namespace cellscope::bench
