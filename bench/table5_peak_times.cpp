// Table 5 — time of traffic peak and valley per region, weekday vs
// weekend. Paper: valleys always at 4:00-5:00; resident peak 21:30;
// transport double peaks (8:00, 18:00) on weekdays; entertainment peak
// 18:00 weekday vs 12:30 weekend.
#include <iostream>

#include "bench_common.h"
#include "common/string_util.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Table 5", "Time of traffic peak and valley per region");
  const auto& e = experiment();

  auto peaks_to_string = [](const std::vector<double>& hours) {
    std::vector<std::string> parts;
    std::vector<double> sorted = hours;
    std::sort(sorted.begin(), sorted.end());
    for (const double h : sorted) parts.push_back(format_peak_time(h));
    return join(parts, " & ");
  };

  TextTable table("measured peak/valley times");
  table.set_header({"region", "peaks wd", "valley wd", "peaks we",
                    "valley we"});
  for (const auto region : all_regions()) {
    const auto f = compute_time_features(e.region_aggregate(region));
    table.add_row({region_name(region),
                   peaks_to_string(f.weekday.peak_hours),
                   format_peak_time(f.weekday.valley_hour),
                   peaks_to_string(f.weekend.peak_hours),
                   format_peak_time(f.weekend.valley_hour)});
  }
  std::cout << table.render() << "\n";
  std::cout << "paper reference —\n"
            << "  resident:      peak 21:30 (wd and we); valley 05:00\n"
            << "  transport:     peaks 8:00 & 18:00 (wd); valley 04:00-04:30\n"
            << "  office:        late-morning/midday peak; valley 05:00\n"
            << "  entertainment: peak 18:00 wd vs 12:30 we; valley 05:00\n"
            << "  comprehensive: midday/evening blend; valley 05:00\n"
            << "\nclaim check: people go for entertainment later on "
               "weekdays (because of work) — measured weekday "
               "entertainment peak is in the evening, weekend peak "
               "around midday.\n";
  return 0;
}
