// Table 2 — POI distribution (counts within 200 m) at each cluster's
// highest-density point A..E. Paper: A residential-dominant (195), B
// transport-relative-dominant (2 transport but highest share), C office
// 1016, D entertainment 2165, E mixed.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Table 2", "POI distribution at each cluster's densest point");
  const auto& e = experiment();
  const std::size_t grid_rows = 40;
  const std::size_t grid_cols = 80;

  TextTable table("POI counts within 200 m of points A..E");
  table.set_header({"point", "cluster", "Resident", "Transport", "Office",
                    "Entertain"});
  for (std::size_t c = 0; c < e.n_clusters(); ++c) {
    DensityGrid grid(e.city().box(), grid_rows, grid_cols);
    for (const auto row : e.rows_of_cluster(c))
      grid.add(e.towers()[row].position, 1.0);
    const auto peak = grid.peak();

    // The densest *tower* in the peak cell neighborhood: query POIs at the
    // actual tower position, as the paper does.
    const auto cell_center = grid.cell_center(peak.row, peak.col);
    std::size_t best_row = e.rows_of_cluster(c).front();
    double best_km = 1e18;
    for (const auto row : e.rows_of_cluster(c)) {
      const double km = haversine_km(e.towers()[row].position, cell_center);
      if (km < best_km) {
        best_km = km;
        best_row = row;
      }
    }
    const auto counts =
        e.pois().counts_near(e.towers()[best_row].position, kPoiRadiusM);
    table.add_row({std::string(1, static_cast<char>('A' + c)),
                   region_name(e.labeling().region_of_cluster[c]),
                   std::to_string(counts[0]), std::to_string(counts[1]),
                   std::to_string(counts[2]), std::to_string(counts[3])});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "paper reference rows —\n"
      << "  A (resident):      195 / 0 / 19 / 51\n"
      << "  B (transport):     68 / 2 / 56 / 36  (transport rare in absolute "
         "terms but relatively highest)\n"
      << "  C (office):        151 / 1 / 1016 / 157\n"
      << "  D (entertainment): 16 / 0 / 108 / 2165\n"
      << "  E (comprehensive): 59 / 0 / 179 / 26 (no dominant type)\n";
  return 0;
}
