// Figure 12 — (a) the DFT of the aggregate traffic has three dominant
// peaks at k = 4 (week), 28 (day), 56 (half day); (b) the time series
// reconstructed from only these components (plus DC and conjugates)
// overlays the original, losing < 6% of energy.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 12",
         "Aggregate-traffic DFT and principal-component reconstruction");
  const auto& e = experiment();
  const auto total = e.total_aggregate();
  const Spectrum spectrum(total);

  // (a) Amplitude spectrum up to k = 100.
  std::vector<double> amplitude;
  for (std::size_t k = 1; k <= 100; ++k)
    amplitude.push_back(spectrum.amplitude(k));
  LineChartOptions spec_options;
  spec_options.title = "(a) |DFT| of the aggregate traffic, k = 1..100";
  spec_options.x_label = "frequency index k (4 = week, 28 = day, 56 = half "
                         "day)";
  spec_options.height = 12;
  std::cout << line_chart(amplitude, spec_options) << "\n";

  for (const std::size_t k :
       {kWeeklyComponent, kDailyComponent, kHalfDailyComponent}) {
    const bool local_peak = spectrum.amplitude(k) > spectrum.amplitude(k - 1) &&
                            spectrum.amplitude(k) > spectrum.amplitude(k + 1);
    std::cout << "  k=" << k << ": |X[k]| = " << sci(spectrum.amplitude(k))
              << (local_peak ? "  (local peak ✓)" : "  (NOT a local peak)")
              << "\n";
  }

  // (b) Reconstruction from the three components, first week shown.
  const auto reconstructed = spectrum.reconstruct_principal();
  std::vector<double> original_week(total.begin(),
                                    total.begin() + TimeGrid::kSlotsPerWeek);
  std::vector<double> reconstructed_week(
      reconstructed.begin(), reconstructed.begin() + TimeGrid::kSlotsPerWeek);
  LineChartOptions rec_options;
  rec_options.title = "(b) original vs reconstructed (first week)";
  rec_options.series_names = {"original", "reconstructed"};
  rec_options.height = 12;
  std::cout << "\n"
            << line_chart({original_week, reconstructed_week}, rec_options)
            << "\n";

  const double loss = energy_loss(total, reconstructed);
  std::cout << "relative energy loss of the 3-component reconstruction: "
            << format_double(100.0 * loss, 2) << "%   (paper: < 6%)\n";
  std::cout << "Pearson correlation original vs reconstruction: "
            << format_double(pearson(total, reconstructed), 4) << "\n";

  export_series("fig12a_spectrum", amplitude, "amplitude");
  export_columns("fig12b_reconstruction", {"original", "reconstructed"},
                 {total, reconstructed});
  std::cout << "\nCSV exported to " << figure_output_dir() << "/fig12*.csv\n";
  return 0;
}
