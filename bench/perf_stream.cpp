// Perf: streaming ingest throughput (records/sec) vs shard count, drain
// cost, and the classify-all pass — the online path of DESIGN.md §9. The
// throughput target is >= 1M records/sec on 4 shards: offer_batch takes
// one stripe lock per shard per batch, so the per-record cost is a hash,
// a bucket append, and an integer bin update.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/time_grid.h"
#include "mapred/thread_pool.h"
#include "stream/ingestor.h"
#include "stream/online_classifier.h"
#include "stream/replay.h"

namespace {

using namespace cellscope;

/// Synthetic record stream: uniform towers, time-ordered starts with
/// local jitter — cheap to generate, shaped like a real feed.
std::vector<TrafficLog> synthetic_logs(std::size_t n_records,
                                       std::uint32_t n_towers) {
  static std::vector<TrafficLog> cache;
  static std::size_t cached_records = 0;
  static std::uint32_t cached_towers = 0;
  if (cached_records == n_records && cached_towers == n_towers) return cache;

  Rng rng(4321);
  std::vector<TrafficLog> logs;
  logs.reserve(n_records);
  constexpr std::uint64_t kGridMinutes =
      TimeGrid::kSlots * TimeGrid::kSlotMinutes;
  for (std::size_t i = 0; i < n_records; ++i) {
    TrafficLog log;
    log.user_id = static_cast<std::uint64_t>(rng.uniform_int(0, 99999));
    log.tower_id = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_towers) - 1));
    const auto base = i * kGridMinutes / n_records;
    log.start_minute = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kGridMinutes - 1,
                                base + static_cast<std::uint64_t>(
                                           rng.uniform_int(0, 30))));
    log.end_minute = log.start_minute +
                     static_cast<std::uint32_t>(rng.uniform_int(0, 15));
    log.bytes = static_cast<std::uint64_t>(rng.uniform_int(100, 200000));
    logs.push_back(log);
  }
  cache = std::move(logs);
  cached_records = n_records;
  cached_towers = n_towers;
  return cache;
}

/// Ingest throughput end to end (offer_batch + drain), by shard count.
void BM_StreamIngest(benchmark::State& state) {
  const auto n_shards = static_cast<std::size_t>(state.range(0));
  const auto n_towers =
      static_cast<std::uint32_t>(cellscope::bench::bench_towers());
  const auto logs = synthetic_logs(1'000'000, n_towers);
  ThreadPool pool(default_thread_count());
  for (auto _ : state) {
    StreamIngestor ingestor(
        StreamConfig{.n_shards = n_shards, .queue_capacity = 0});
    ReplayOptions options;
    options.batch_size = 16384;
    const auto stats = replay_trace(logs, ingestor, pool, options);
    benchmark::DoNotOptimize(stats.ingest.accepted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(logs.size()) *
                          state.iterations());
}
BENCHMARK(BM_StreamIngest)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// offer_batch alone — queueing cost without window application.
void BM_StreamOfferBatch(benchmark::State& state) {
  const auto n_towers =
      static_cast<std::uint32_t>(cellscope::bench::bench_towers());
  const auto logs = synthetic_logs(1'000'000, n_towers);
  ThreadPool pool(default_thread_count());
  for (auto _ : state) {
    StreamIngestor ingestor(
        StreamConfig{.n_shards = 4, .queue_capacity = 0});
    benchmark::DoNotOptimize(ingestor.offer_batch(logs));
    state.PauseTiming();
    ingestor.drain(pool);  // empty the queues outside the timed region
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(logs.size()) *
                          state.iterations());
}
BENCHMARK(BM_StreamOfferBatch)->Unit(benchmark::kMillisecond);

/// Folded-vector extraction for every tower (the snapshot the classifier
/// and any dashboard reads).
void BM_StreamFoldedVectors(benchmark::State& state) {
  const auto n_towers =
      static_cast<std::uint32_t>(cellscope::bench::bench_towers());
  const auto logs = synthetic_logs(1'000'000, n_towers);
  ThreadPool pool(default_thread_count());
  StreamIngestor ingestor(StreamConfig{.n_shards = 4, .queue_capacity = 0});
  ingestor.offer_batch(logs);
  ingestor.drain(pool);
  for (auto _ : state) {
    auto folded = ingestor.folded_vectors(&pool);
    benchmark::DoNotOptimize(folded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n_towers) *
                          state.iterations());
}
BENCHMARK(BM_StreamFoldedVectors)->Unit(benchmark::kMillisecond);

/// Full online classification pass against the shared trained model.
void BM_StreamClassifyAll(benchmark::State& state) {
  const auto& experiment = cellscope::bench::experiment();
  const OnlineClassifier classifier(snapshot_model(experiment));
  const auto n_towers =
      static_cast<std::uint32_t>(cellscope::bench::bench_towers());
  const auto logs = synthetic_logs(1'000'000, n_towers);
  ThreadPool pool(default_thread_count());
  StreamIngestor ingestor(StreamConfig{.n_shards = 4, .queue_capacity = 0});
  ingestor.offer_batch(logs);
  ingestor.drain(pool);
  for (auto _ : state) {
    auto labels = classifier.classify_all(ingestor, &pool);
    benchmark::DoNotOptimize(labels);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n_towers) *
                          state.iterations());
}
BENCHMARK(BM_StreamClassifyAll)->Unit(benchmark::kMillisecond);

}  // namespace

CELLSCOPE_BENCH_JSON("perf_stream");
