// Perf: the blocked pairwise-distance kernel in isolation.
//
// DistanceMatrix::compute is the O(n²·dim) hot kernel of the analytics
// core (DESIGN.md §8). This bench times it kernel-only — synthetic points,
// no pipeline — across worker counts: Threads=0 is the serial reference
// path, Threads=1/2/4/8 run the same tile kernel through a ThreadPool, so
// the 0→1 delta is the pool overhead and 1→N the scaling. Rows are sized
// like the mean-week clustering representation (1008 dims).
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <memory>

#include "common/rng.h"
#include "mapred/thread_pool.h"
#include "ml/distance.h"

namespace {

using namespace cellscope;

constexpr std::size_t kDim = 1008;  // mean-week fold length

const std::vector<std::vector<double>>& kernel_points() {
  static const std::vector<std::vector<double>> points = [] {
    const std::size_t n = bench::bench_towers();
    Rng rng(bench::bench_seed());
    std::vector<std::vector<double>> p(n, std::vector<double>(kDim));
    for (auto& row : p)
      for (auto& v : row) v = rng.normal();
    return p;
  }();
  return points;
}

void BM_DistanceKernel(benchmark::State& state) {
  const auto& points = kernel_points();
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  for (auto _ : state) {
    auto d = DistanceMatrix::compute(points, pool.get());
    benchmark::DoNotOptimize(d);
  }
  const auto n = points.size();
  state.SetItemsProcessed(static_cast<std::int64_t>(n * (n - 1) / 2) *
                          state.iterations());
}
BENCHMARK(BM_DistanceKernel)
    ->Arg(0)  // serial reference (no pool)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CELLSCOPE_BENCH_JSON("perf_distance");
