// Perf: full-scale trace ingest — the out-of-core columnar path vs the
// CSV text path at city scale (9,600 towers at the default
// CELLSCOPE_TOWERS=800; the trace scales with the tower count so quick
// mode stays cheap). The ISSUE-8 target is >= 10x replay throughput for
// the mmap+bulk path over CSV: the binary path skips text parsing, maps
// chunks zero-copy, decodes only the four ingest columns, and applies
// them through the fused ingest_columns scatter instead of the offer
// queue. The time-slice case shows the footer index pruning chunks
// wholesale.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_grid.h"
#include "mapred/thread_pool.h"
#include "stream/ingestor.h"
#include "stream/replay.h"
#include "traffic/columnar.h"
#include "traffic/trace_codec.h"

namespace {

using namespace cellscope;

/// The shared on-disk trace pair (same records, both codecs), built once
/// per process and deleted at exit. 12x the bench tower count reproduces
/// the paper's ~9,600-tower deployment at the default scale; 250 records
/// per tower keeps full scale at ~2.4M records.
struct FullscaleTrace {
  std::string csv_path;
  std::string ctb_path;
  std::size_t records = 0;
  std::uint32_t towers = 0;

  FullscaleTrace() {
    towers = static_cast<std::uint32_t>(cellscope::bench::bench_towers() * 12);
    records = static_cast<std::size_t>(towers) * 250;
    const auto dir = std::filesystem::temp_directory_path();
    const std::string stem =
        "cs_fullscale_" + std::to_string(::getpid());
    csv_path = (dir / (stem + ".csv")).string();
    ctb_path = (dir / (stem + ".ctb")).string();

    Rng rng(cellscope::bench::bench_seed());
    constexpr std::uint64_t kGridMinutes =
        TimeGrid::kSlots * TimeGrid::kSlotMinutes;
    std::vector<TrafficLog> logs;
    logs.reserve(records);
    for (std::size_t i = 0; i < records; ++i) {
      TrafficLog log;
      log.user_id = static_cast<std::uint64_t>(rng.uniform_int(0, 999999));
      log.tower_id = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(towers) - 1));
      const auto base = i * kGridMinutes / records;
      log.start_minute = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          kGridMinutes - 1,
          base + static_cast<std::uint64_t>(rng.uniform_int(0, 30))));
      log.end_minute = log.start_minute +
                       static_cast<std::uint32_t>(rng.uniform_int(0, 15));
      log.bytes = static_cast<std::uint64_t>(rng.uniform_int(100, 200000));
      logs.push_back(log);
    }
    write_trace(csv_path, logs, TraceCodec::kCsv);
    write_trace(ctb_path, logs, TraceCodec::kBinary);
  }
  ~FullscaleTrace() {
    std::error_code ec;
    std::filesystem::remove(csv_path, ec);
    std::filesystem::remove(ctb_path, ec);
  }
};

const FullscaleTrace& trace() {
  static FullscaleTrace shared;
  return shared;
}

void run_replay(benchmark::State& state, const std::string& path,
                const FileReplayOptions& options) {
  ThreadPool pool(default_thread_count());
  std::size_t records = 0;
  for (auto _ : state) {
    StreamIngestor ingestor(StreamConfig{.n_shards = 4, .queue_capacity = 0});
    const auto stats = replay_trace_file(path, ingestor, pool, options);
    benchmark::DoNotOptimize(stats.ingest.accepted);
    records = stats.records;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records) *
                          state.iterations());
  state.counters["towers"] = static_cast<double>(trace().towers);
}

/// Baseline: the text path — parse every CSV line, offer, drain.
void BM_FullscaleCsvIngest(benchmark::State& state) {
  run_replay(state, trace().csv_path, FileReplayOptions{});
}
BENCHMARK(BM_FullscaleCsvIngest)->Unit(benchmark::kMillisecond);

/// Columnar file through the legacy offer/drain path: isolates the
/// decode win (no text parsing) from the fused-apply win.
void BM_FullscaleBinOfferIngest(benchmark::State& state) {
  FileReplayOptions options;
  options.bulk = false;
  run_replay(state, trace().ctb_path, options);
}
BENCHMARK(BM_FullscaleBinOfferIngest)->Unit(benchmark::kMillisecond);

/// The full fast path: mmap chunks, column-selective decode, fused
/// ingest_columns — the >= 10x-over-CSV configuration.
void BM_FullscaleMmapBulkIngest(benchmark::State& state) {
  run_replay(state, trace().ctb_path, FileReplayOptions{});
}
BENCHMARK(BM_FullscaleMmapBulkIngest)->Unit(benchmark::kMillisecond);

/// Chunk skipping: a one-day time slice of the feed — the footer index
/// prunes every chunk outside the window without touching its pages.
/// items/sec counts only the records actually applied.
void BM_FullscaleMmapTimeSlice(benchmark::State& state) {
  constexpr std::uint32_t kDayMinutes = 24 * 60;
  FileReplayOptions options;
  options.filter.min_minute = 7 * kDayMinutes;
  options.filter.max_minute = 8 * kDayMinutes - 1;
  run_replay(state, trace().ctb_path, options);
}
BENCHMARK(BM_FullscaleMmapTimeSlice)->Unit(benchmark::kMillisecond);

}  // namespace

CELLSCOPE_BENCH_JSON("perf_ingest_fullscale");
