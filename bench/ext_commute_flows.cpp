// Extension — measuring the commute directly. The paper reads "the human
// migration flow from home to office via transport" out of the *phases*
// of tower traffic (Fig. 15b). With the mobility-aware trace, the flow is
// measurable from per-user tower transitions — this bench prints both
// views side by side and checks that they agree.
#include <iostream>

#include "analysis/commute_flows.h"
#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "traffic/mobility_trace.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  enable_json_report("ext_commute_flows");
  banner("Extension: commute flows",
         "Per-user region transitions vs the Fig. 15b phase ordering");
  const auto& e = experiment();

  MobilityOptions mobility_options;
  mobility_options.n_users = 600;
  mobility_options.seed = bench_seed() * 3 + 1;
  std::vector<TrafficLog> logs;
  {
    obs::StageSpan trace_span("ext.mobility_trace", "ext",
                              obs::LogLevel::kDebug);
    const auto mobility = MobilityModel::create(e.towers(), mobility_options);
    MobilityTraceOptions trace_options;
    trace_options.day_begin = 0;
    trace_options.day_end = 5;
    logs = generate_mobility_trace(e.towers(), mobility, trace_options);
    obs::MetricsRegistry::instance()
        .counter("cellscope.ext.commute_session_logs")
        .add(logs.size());
    trace_span.annotate({"users", mobility_options.n_users});
    trace_span.annotate({"logs", logs.size()});
  }
  std::cout << logs.size() << " session logs from "
            << mobility_options.n_users << " users over one work week\n\n";

  // Region of each tower from the *clustering* (the analysis path), not
  // the latent truth.
  std::vector<FunctionalRegion> regions(e.towers().size(),
                                        FunctionalRegion::kComprehensive);
  for (std::size_t i = 0; i < e.towers().size(); ++i)
    regions[e.matrix().tower_ids[i]] =
        e.labeling().region_of_cluster[static_cast<std::size_t>(
            e.labels()[i])];

  auto print_flows = [&](const FlowMatrix& flows, const std::string& title) {
    TextTable table(title + " — row = from, column = to (" +
                    std::to_string(flows.total_cross()) +
                    " cross-region transitions)");
    std::vector<std::string> header = {"from \\ to"};
    for (const auto r : all_regions())
      header.push_back(region_name(r).substr(0, 6));
    table.set_header(header);
    for (const auto from : all_regions()) {
      std::vector<std::string> row = {region_name(from)};
      for (const auto to : all_regions())
        row.push_back(format_double(100.0 * flows.share(from, to), 1) + "%");
      table.add_row(row);
    }
    std::cout << table.render() << "\n";
  };

  FlowOptions morning;
  morning.hour_begin = 6.0;
  morning.hour_end = 11.0;
  const auto am = commute_flows(logs, regions, morning);
  print_flows(am, "morning rush (6:00-11:00, weekdays)");

  FlowOptions evening;
  evening.hour_begin = 16.0;
  evening.hour_end = 21.0;
  const auto pm = commute_flows(logs, regions, evening);
  print_flows(pm, "evening rush (16:00-21:00, weekdays)");

  std::cout
      << "claim checks (the Fig. 15b narrative, measured from user "
         "trajectories):\n"
      << "  * morning resident->transport + transport->office share: "
      << format_double(
             100.0 * (am.share(FunctionalRegion::kResident,
                               FunctionalRegion::kTransport) +
                      am.share(FunctionalRegion::kTransport,
                               FunctionalRegion::kOffice)),
             1)
      << "%\n"
      << "  * evening office->transport + transport->resident share: "
      << format_double(
             100.0 * (pm.share(FunctionalRegion::kOffice,
                               FunctionalRegion::kTransport) +
                      pm.share(FunctionalRegion::kTransport,
                               FunctionalRegion::kResident)),
             1)
      << "%\n"
      << "  * the same commute that orders the daily phases resident < "
         "comprehensive < transport < office (fig15_16 bench) appears "
         "here as directed morning/evening flows.\n";
  return 0;
}
