// Perf: the SIMD kernel layer, scalar dispatch vs the widest detected
// ISA (DESIGN.md §12), plus the ANN centroid index vs the exact scan.
//
// Every benchmark here runs twice — Arg(0) forces scalar dispatch,
// Arg(1) the widest ISA the CPU reports — so the committed baseline
// pins both the absolute times and the vector-vs-scalar ratio. The
// outputs are bit-identical between the two runs by the §12 contract;
// only the wall time may differ. The distance-tile pair is the headline:
// the packed dot4 path is expected to hold ≥2× over scalar on AVX2.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <complex>
#include <vector>

#include "common/rng.h"
#include "common/time_grid.h"
#include "dsp/fft.h"
#include "ml/centroid_index.h"
#include "ml/distance.h"
#include "pipeline/traffic_matrix.h"
#include "simd/simd.h"

namespace {

using namespace cellscope;

constexpr std::size_t kDim = 1008;  // mean-week fold length

simd::Isa isa_for(int arg) {
  return arg == 0 ? simd::Isa::kScalar : simd::detected_isa();
}

/// Forces dispatch for the duration of one benchmark run and labels the
/// row with the ISA it actually measured.
struct IsaScope {
  IsaScope(benchmark::State& state) {
    const simd::Isa isa = isa_for(static_cast<int>(state.range(0)));
    simd::force_isa(isa);
    state.SetLabel(std::string(simd::isa_name(isa)));
  }
  ~IsaScope() { simd::force_isa(std::nullopt); }
};

const std::vector<std::vector<double>>& kernel_points() {
  static const std::vector<std::vector<double>> points = [] {
    const std::size_t n = bench::bench_towers();
    Rng rng(bench::bench_seed());
    std::vector<std::vector<double>> p(n, std::vector<double>(kDim));
    for (auto& row : p)
      for (auto& v : row) v = rng.normal();
    return p;
  }();
  return points;
}

/// The headline pair: the blocked distance kernel (serial, so the delta
/// is pure kernel arithmetic, not pool scheduling).
void BM_SimdDistanceTile(benchmark::State& state) {
  const auto& points = kernel_points();
  IsaScope scope(state);
  for (auto _ : state) {
    auto d = DistanceMatrix::compute(points);
    benchmark::DoNotOptimize(d);
  }
  const auto n = points.size();
  state.SetItemsProcessed(static_cast<std::int64_t>(n * (n - 1) / 2) *
                          state.iterations());
}
BENCHMARK(BM_SimdDistanceTile)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SimdZscoreFold(benchmark::State& state) {
  static const TrafficMatrix& matrix = [] {
    static TrafficMatrix m;
    Rng rng(bench::bench_seed());
    for (std::size_t i = 0; i < bench::bench_towers(); ++i) {
      m.tower_ids.push_back(static_cast<std::uint32_t>(i));
      std::vector<double> row(TimeGrid::kSlots);
      for (auto& v : row) v = 100.0 + 50.0 * rng.normal();
      m.rows.push_back(std::move(row));
    }
    return m;
  }();
  IsaScope scope(state);
  for (auto _ : state) {
    auto folded = fold_to_week(zscore_rows(matrix));
    benchmark::DoNotOptimize(folded);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(matrix.n() * TimeGrid::kSlots) *
      state.iterations());
}
BENCHMARK(BM_SimdZscoreFold)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SimdFft(benchmark::State& state) {
  // The Bluestein path over the full 4032-slot month: chirp products and
  // the m=8192 radix-2 butterflies both go through the dispatcher.
  static const std::vector<Complex>& input = [] {
    static std::vector<Complex> in(TimeGrid::kSlots);
    Rng rng(bench::bench_seed());
    for (auto& c : in) c = Complex(rng.normal(), rng.normal());
    return in;
  }();
  IsaScope scope(state);
  for (auto _ : state) {
    auto spectrum = fft(input, false);
    benchmark::DoNotOptimize(spectrum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(input.size()) *
                          state.iterations());
}
BENCHMARK(BM_SimdFft)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// ANN centroid matching vs the exact scan it replaced: Arg(0) scans all
/// centroids, Arg(1) walks the neighbor graph. Both return exact
/// distances; the graph is sublinear in the centroid count.
void BM_AnnClassify(benchmark::State& state) {
  static const std::vector<std::vector<double>>& centroids = [] {
    static std::vector<std::vector<double>> c;
    Rng rng(bench::bench_seed());
    const std::size_t k = std::max<std::size_t>(bench::bench_towers(), 128);
    for (std::size_t i = 0; i < k; ++i) {
      std::vector<double> row(TimeGrid::kSlotsPerWeek);
      for (auto& v : row) v = static_cast<double>(i % 32) + rng.normal();
      c.push_back(std::move(row));
    }
    return c;
  }();
  CentroidIndex::Options options;
  if (state.range(0) == 0)
    options.brute_force_below = centroids.size() + 1;  // exact scan
  const CentroidIndex index(centroids, options);
  state.SetLabel(index.brute_force() ? "scan" : "graph");
  Rng rng(bench::bench_seed() + 1);
  std::vector<double> query(TimeGrid::kSlotsPerWeek);
  for (auto& v : query) v = rng.normal();
  std::size_t cursor = 0;
  for (auto _ : state) {
    // Vary the query cheaply so the walk is not a single cached path.
    query[cursor % query.size()] += 1.0;
    ++cursor;
    auto best = index.nearest(query);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnnClassify)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

CELLSCOPE_BENCH_JSON("perf_simd");
