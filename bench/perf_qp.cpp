// Perf/ablation: the §5.3 QP solver — exact active-set enumeration vs the
// projected-gradient baseline, across component counts.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "common/rng.h"
#include "opt/simplex_ls.h"

namespace {

using namespace cellscope;

std::vector<std::vector<double>> random_components(std::size_t m,
                                                   std::size_t dim) {
  Rng rng(m * 31 + dim);
  std::vector<std::vector<double>> components(m, std::vector<double>(dim));
  for (auto& c : components)
    for (auto& v : c) v = rng.normal();
  return components;
}

void BM_ActiveSet(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto components = random_components(m, 3);
  Rng rng(9);
  std::vector<double> target = {rng.normal(), rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto result = solve_simplex_ls(components, target);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ActiveSet)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_ProjectedGradient(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto components = random_components(m, 3);
  Rng rng(9);
  std::vector<double> target = {rng.normal(), rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto result = solve_simplex_ls_pg(components, target, 5000, 1e-10);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ProjectedGradient)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_SimplexProjection(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> v(static_cast<std::size_t>(state.range(0)));
  for (auto& x : v) x = rng.normal();
  for (auto _ : state) {
    auto p = project_to_simplex(v);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_SimplexProjection)->Arg(4)->Arg(64)->Arg(1024);

void BM_DecomposeAllComprehensiveTowers(benchmark::State& state) {
  // The full §5.3 workload shape: many 4-component, 3-dim solves.
  const auto components = random_components(4, 3);
  Rng rng(11);
  std::vector<std::vector<double>> targets(200);
  for (auto& t : targets)
    t = {rng.normal(), rng.normal(), rng.normal()};
  for (auto _ : state) {
    double total = 0.0;
    for (const auto& target : targets)
      total += solve_simplex_ls(components, target).objective;
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(targets.size()) *
                          state.iterations());
}
BENCHMARK(BM_DecomposeAllComprehensiveTowers)->Unit(benchmark::kMillisecond);

}  // namespace

CELLSCOPE_BENCH_JSON("perf_qp");
