// Figure 10 — time-domain characteristics of the five patterns:
//   (a) weekday/weekend traffic-amount ratio (transport 1.49, office 1.79,
//       others ≈ 1),
//   (b) weekday and weekend peak-valley ratios (transport by far highest).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 10",
         "Weekday/weekend ratio and peak-valley ratios per pattern");
  const auto& e = experiment();

  const double paper_wd_we[kNumRegions] = {1.0, 1.49, 1.79, 1.0, 1.0};

  std::vector<std::string> labels;
  std::vector<double> ratios;
  std::vector<double> pv_weekday;
  std::vector<double> pv_weekend;

  TextTable table("(a) weekday/weekend traffic amount ratio");
  table.set_header({"region", "measured", "paper"});
  for (const auto region : all_regions()) {
    const auto features = compute_time_features(e.region_aggregate(region));
    labels.push_back(region_name(region));
    ratios.push_back(features.weekday_weekend_ratio);
    pv_weekday.push_back(features.weekday.peak_valley_ratio);
    pv_weekend.push_back(features.weekend.peak_valley_ratio);
    table.add_row({region_name(region),
                   format_double(features.weekday_weekend_ratio, 2),
                   format_double(paper_wd_we[static_cast<int>(region)], 2)});
  }
  std::cout << table.render() << "\n";
  std::cout << bar_chart(labels, ratios, "weekday/weekend ratio", 40) << "\n";

  std::cout << "(b) peak-valley ratio, weekday vs weekend (paper: transport "
               "~133/115, office ~23/16, entertainment ~32/35, resident "
               "~9/9, comprehensive ~9/10):\n\n";
  std::cout << bar_chart(labels, pv_weekday, "weekday peak-valley ratio", 40)
            << "\n";
  std::cout << bar_chart(labels, pv_weekend, "weekend peak-valley ratio", 40)
            << "\n";

  export_columns("fig10_ratios",
                 {"region_index", "wd_we_ratio", "pv_weekday", "pv_weekend"},
                 {{0, 1, 2, 3, 4}, ratios, pv_weekday, pv_weekend});
  std::cout << "CSV exported to " << figure_output_dir()
            << "/fig10_ratios.csv\n";
  return 0;
}
