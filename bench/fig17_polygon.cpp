// Figure 17 — the three-dimensional feature space (A28, P28, A56): towers
// distribute inside (or along the faces of) the polygon spanned by the
// four most representative towers, so any tower's features decompose as a
// convex combination of the four primary components.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 17",
         "Tower distribution in (A28, P28, A56) and the primary polygon");
  const auto& e = experiment();
  const auto& features = e.freq_features();
  const auto& reps = e.representatives();

  // Two 2-D projections of the 3-D feature space.
  std::vector<double> a28;
  std::vector<double> p28;
  std::vector<double> a56;
  std::vector<int> cls;
  for (std::size_t i = 0; i < features.size(); ++i) {
    a28.push_back(features[i].amp_day);
    p28.push_back(features[i].phase_day);
    a56.push_back(features[i].amp_half_day);
    cls.push_back(static_cast<int>(
        e.labeling().region_of_cluster[static_cast<std::size_t>(
            e.labels()[i])]));
  }
  std::cout << scatter_plot(a28, p28, cls,
                            "projection 1: A28 (x) vs P28 (y)  "
                            "[0=Res 1=Tra 2=Off 3=Ent 4=Com]",
                            80, 20);
  std::cout << scatter_plot(a28, a56, cls,
                            "projection 2: A28 (x) vs A56 (y)", 80, 20);

  TextTable table("the four primary components (most representative towers)");
  table.set_header({"component", "tower id", "A28", "P28", "A56"});
  std::array<std::array<double, 3>, 4> primaries;
  for (int r = 0; r < 4; ++r) {
    primaries[r] = features[reps[r]].qp_feature();
    table.add_row({region_name(static_cast<FunctionalRegion>(r)),
                   std::to_string(e.matrix().tower_ids[reps[r]]),
                   format_double(primaries[r][0], 3),
                   format_double(primaries[r][1], 3),
                   format_double(primaries[r][2], 3)});
  }
  std::cout << table.render() << "\n";

  // Polygon containment: decompose every tower against the primaries and
  // report the residual distribution — small residuals mean the cloud
  // lies (approximately) within the polygon.
  std::vector<double> residuals;
  for (std::size_t i = 0; i < features.size(); ++i)
    residuals.push_back(
        decompose_feature(features[i].qp_feature(), primaries).residual);
  std::cout << "decomposition residual over all towers: median "
            << format_double(quantile(residuals, 0.5), 3) << ", 90th pct "
            << format_double(quantile(residuals, 0.9), 3) << ", max "
            << format_double(max_value(residuals), 3) << "\n";
  std::cout << "(paper: towers lie in or along the edges/faces of the "
               "polygon; noise pushes some slightly outside)\n";

  export_columns("fig17_space", {"a28", "p28", "a56", "cluster_region"},
                 {a28, p28, a56,
                  std::vector<double>(cls.begin(), cls.end())});
  std::cout << "\nCSV exported to " << figure_output_dir()
            << "/fig17_space.csv\n";
  return 0;
}
