// Perf/ablation: end-to-end pipeline stage timings vs tower count, and
// the weekly-fold ablation (DESIGN.md §5.2 — fold vs full-length
// clustering).
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <map>

#include "city/deployment.h"
#include "city/poi.h"
#include "core/experiment.h"
#include "ml/distance.h"
#include "pipeline/traffic_matrix.h"
#include "pipeline/vectorizer.h"
#include "traffic/intensity_model.h"

namespace {

using namespace cellscope;

void BM_FullExperiment(benchmark::State& state) {
  ExperimentConfig config;
  config.n_towers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto experiment = Experiment::run(config);
    benchmark::DoNotOptimize(experiment.labels());
  }
  state.SetItemsProcessed(state.range(0) * state.iterations());
}
BENCHMARK(BM_FullExperiment)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

struct Stages {
  std::vector<Tower> towers;
  std::unique_ptr<IntensityModel> intensity;
  TrafficMatrix matrix;
  std::vector<std::vector<double>> zscored;
};

const Stages& stages(std::size_t n) {
  static std::map<std::size_t, Stages> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Stages s;
    const auto city = CityModel::create_default();
    DeploymentOptions deployment;
    deployment.n_towers = n;
    s.towers = deploy_towers(city, deployment);
    s.intensity = std::make_unique<IntensityModel>(
        IntensityModel::create(s.towers, IntensityOptions{}));
    s.matrix = vectorize_intensity(s.towers, *s.intensity, 3);
    s.zscored = zscore_rows(s.matrix);
    it = cache.emplace(n, std::move(s)).first;
  }
  return it->second;
}

void BM_StageVectorize(benchmark::State& state) {
  const auto& s = stages(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto matrix = vectorize_intensity(s.towers, *s.intensity, 3);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_StageVectorize)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_StageZscore(benchmark::State& state) {
  const auto& s = stages(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto z = zscore_rows(s.matrix);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_StageZscore)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_FoldAblation_Folded(benchmark::State& state) {
  // Distance matrix over the mean-week fold (1008 dims).
  const auto& s = stages(300);
  for (auto _ : state) {
    auto folded = fold_to_week(s.zscored);
    auto distances = DistanceMatrix::compute(folded);
    benchmark::DoNotOptimize(distances);
  }
}
BENCHMARK(BM_FoldAblation_Folded)->Unit(benchmark::kMillisecond);

void BM_FoldAblation_FullLength(benchmark::State& state) {
  // Distance matrix over the full 4032-dim vectors — the ~4x cost the
  // fold saves.
  const auto& s = stages(300);
  for (auto _ : state) {
    auto distances = DistanceMatrix::compute(s.zscored);
    benchmark::DoNotOptimize(distances);
  }
}
BENCHMARK(BM_FoldAblation_FullLength)->Unit(benchmark::kMillisecond);

void BM_StagePoiGeneration(benchmark::State& state) {
  const auto& s = stages(static_cast<std::size_t>(state.range(0)));
  const auto city = CityModel::create_default();
  for (auto _ : state) {
    auto pois = PoiDatabase::generate(city, s.towers,
                                      s.intensity->mixtures(),
                                      PoiGenerationOptions{});
    benchmark::DoNotOptimize(pois);
  }
}
BENCHMARK(BM_StagePoiGeneration)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

CELLSCOPE_BENCH_JSON("perf_pipeline");
