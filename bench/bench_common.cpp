#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/error.h"
#include "obs/report.h"
#include "obs/timer.h"

namespace cellscope::bench {

std::size_t bench_towers() {
  const char* env = std::getenv("CELLSCOPE_TOWERS");
  if (env && *env) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 20) return static_cast<std::size_t>(v);
  }
  return 800;
}

std::uint64_t bench_seed() {
  const char* env = std::getenv("CELLSCOPE_SEED");
  if (env && *env) return std::strtoull(env, nullptr, 10);
  return 2015;
}

const Experiment& experiment() {
  static const Experiment instance = [] {
    ExperimentConfig config;
    config.n_towers = bench_towers();
    config.seed = bench_seed();
    return Experiment::run(config);
  }();
  return instance;
}

void banner(const std::string& artifact, const std::string& description) {
  std::cout << "================================================================\n"
            << "CellScope reproduction — " << artifact << "\n"
            << description << "\n"
            << "synthetic city: " << bench_towers() << " towers, seed "
            << bench_seed() << "\n"
            << "================================================================\n\n";
}

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

namespace {

std::string bench_report_path(const std::string& name) {
  std::string dir = ".";
  if (const char* env = std::getenv("CELLSCOPE_BENCH_DIR"); env && *env)
    dir = env;
  return dir + "/BENCH_" + name + ".json";
}

/// The bench whose report is written at exit (empty = none registered).
std::string& registered_report_name() {
  static std::string name;
  return name;
}

void write_report_at_exit() {
  const std::string& name = registered_report_name();
  if (name.empty()) return;
  try {
    report_json(name);
  } catch (const Error&) {
    // A failed report write must not turn a green bench red.
  }
}

}  // namespace

std::string report_json(const std::string& name) {
  // BENCH_*.json shares the run-report schema (obs/report.h): build
  // identity, config, stage spans, metrics with percentiles, quality
  // verdicts. bench_compare gates on its top-level "wall_s".
  const std::string path = bench_report_path(name);
  obs::RunReport report(name);
  report.add_config("towers", bench_towers());
  report.add_config("seed", bench_seed());
  report.write(path);
  return path;
}

void enable_json_report(const std::string& name) {
  // Record pipeline spans even without CELLSCOPE_TRACE so the report can
  // break the run down per stage.
  obs::StageTrace::instance().set_enabled(true);
  // With CELLSCOPE_RUN_REPORT set, also emit a run report named after
  // this bench at exit (the bench name wins over "experiment").
  obs::arm_run_report(name);
  const bool already_registered = !registered_report_name().empty();
  registered_report_name() = name;
  if (!already_registered) std::atexit(write_report_at_exit);
}

}  // namespace cellscope::bench
