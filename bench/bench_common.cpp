#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace cellscope::bench {

std::size_t bench_towers() {
  const char* env = std::getenv("CELLSCOPE_TOWERS");
  if (env && *env) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 20) return static_cast<std::size_t>(v);
  }
  return 800;
}

std::uint64_t bench_seed() {
  const char* env = std::getenv("CELLSCOPE_SEED");
  if (env && *env) return std::strtoull(env, nullptr, 10);
  return 2015;
}

const Experiment& experiment() {
  static const Experiment instance = [] {
    ExperimentConfig config;
    config.n_towers = bench_towers();
    config.seed = bench_seed();
    return Experiment::run(config);
  }();
  return instance;
}

void banner(const std::string& artifact, const std::string& description) {
  std::cout << "================================================================\n"
            << "CellScope reproduction — " << artifact << "\n"
            << description << "\n"
            << "synthetic city: " << bench_towers() << " towers, seed "
            << bench_seed() << "\n"
            << "================================================================\n\n";
}

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

namespace {

std::string format_json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string bench_report_path(const std::string& name) {
  std::string dir = ".";
  if (const char* env = std::getenv("CELLSCOPE_BENCH_DIR"); env && *env)
    dir = env;
  return dir + "/BENCH_" + name + ".json";
}

/// The bench whose report is written at exit (empty = none registered).
std::string& registered_report_name() {
  static std::string name;
  return name;
}

void write_report_at_exit() {
  const std::string& name = registered_report_name();
  if (name.empty()) return;
  try {
    report_json(name);
  } catch (const Error&) {
    // A failed report write must not turn a green bench red.
  }
}

}  // namespace

std::string report_json(const std::string& name) {
  const std::string path = bench_report_path(name);
  std::string json = "{\"bench\":\"" + obs::json_escape(name) + "\"";
  json += ",\"towers\":" + std::to_string(bench_towers());
  json += ",\"seed\":" + std::to_string(bench_seed());
  json += ",\"wall_s\":" + format_json_double(obs::now_us() / 1e6);
  json += ",\"stages\":[";
  bool first = true;
  for (const auto& e : obs::StageTrace::instance().events()) {
    if (!first) json += ',';
    first = false;
    json += "{\"name\":\"" + obs::json_escape(e.name) + "\",\"cat\":\"" +
            obs::json_escape(e.category) +
            "\",\"ts_us\":" + format_json_double(e.ts_us) +
            ",\"dur_us\":" + format_json_double(e.dur_us) + '}';
  }
  json += "],\"metrics\":" + obs::MetricsRegistry::instance().snapshot_json();
  json += "}";

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) throw IoError("cannot write bench report: " + path);
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  return path;
}

void enable_json_report(const std::string& name) {
  // Record pipeline spans even without CELLSCOPE_TRACE so the report can
  // break the run down per stage.
  obs::StageTrace::instance().set_enabled(true);
  const bool already_registered = !registered_report_name().empty();
  registered_report_name() = name;
  if (!already_registered) std::atexit(write_report_at_exit);
}

}  // namespace cellscope::bench
