#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace cellscope::bench {

std::size_t bench_towers() {
  const char* env = std::getenv("CELLSCOPE_TOWERS");
  if (env && *env) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 20) return static_cast<std::size_t>(v);
  }
  return 800;
}

std::uint64_t bench_seed() {
  const char* env = std::getenv("CELLSCOPE_SEED");
  if (env && *env) return std::strtoull(env, nullptr, 10);
  return 2015;
}

const Experiment& experiment() {
  static const Experiment instance = [] {
    ExperimentConfig config;
    config.n_towers = bench_towers();
    config.seed = bench_seed();
    return Experiment::run(config);
  }();
  return instance;
}

void banner(const std::string& artifact, const std::string& description) {
  std::cout << "================================================================\n"
            << "CellScope reproduction — " << artifact << "\n"
            << description << "\n"
            << "synthetic city: " << bench_towers() << " towers, seed "
            << bench_seed() << "\n"
            << "================================================================\n\n";
}

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

}  // namespace cellscope::bench
