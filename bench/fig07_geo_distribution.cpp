// Figure 7 — geographical density map of the towers in each identified
// cluster: resident towers ring the city, office towers pack the CBD,
// transport towers string along corridors, entertainment towers dot hubs,
// comprehensive towers spread everywhere.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 7", "Geographical density of towers per cluster");
  const auto& e = experiment();
  const std::size_t rows = 20;
  const std::size_t cols = 44;

  for (std::size_t c = 0; c < e.n_clusters(); ++c) {
    DensityGrid grid(e.city().box(), rows, cols);
    for (const auto row : e.rows_of_cluster(c))
      grid.add(e.towers()[row].position, 1.0);
    const auto region = e.labeling().region_of_cluster[c];
    std::cout << heatmap(grid.values(), rows, cols,
                         "cluster #" + std::to_string(c + 1) + " — " +
                             region_name(region) + " tower density")
              << "\n";

    // The cluster's highest-density point — the paper's point A..E.
    const auto peak = grid.peak();
    const auto center = grid.cell_center(peak.row, peak.col);
    std::cout << "  highest-density point (the paper's point "
              << static_cast<char>('A' + c) << "): lat "
              << format_double(center.lat, 3) << ", lon "
              << format_double(center.lon, 3) << " with "
              << static_cast<int>(peak.value) << " towers in the cell\n";

    // Spatial spread: mean distance of the cluster's towers to the city
    // center distinguishes the ring (resident) from the core (office).
    double mean_km = 0.0;
    const auto rows_of = e.rows_of_cluster(c);
    for (const auto row : rows_of)
      mean_km += haversine_km(e.towers()[row].position,
                              e.city().box().center());
    std::cout << "  mean distance to city center: "
              << format_double(mean_km / static_cast<double>(rows_of.size()),
                               1)
              << " km\n\n";
  }
  std::cout << "paper: resident towers ring the fringe; office towers sit "
               "in the CBD; comprehensive towers are uniform.\n";
  return 0;
}
