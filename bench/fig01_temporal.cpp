// Figure 1 — the temporal distribution of cellular traffic at three time
// scales: one day (hourly shape with two peaks, ~12:00 and ~22:00), one
// week (weekday/weekend alternation), and the full four weeks (weekly
// periodicity).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figure 1",
         "Aggregate traffic at hourly / daily / weekly time scales");
  const auto& e = experiment();
  const auto total = e.total_aggregate();

  // (a) One day (Thursday of week 1, like the paper's Aug 7).
  const std::size_t day_begin = TimeGrid::slot_at(3, 0, 0);
  std::vector<double> one_day(total.begin() + static_cast<long>(day_begin),
                              total.begin() +
                                  static_cast<long>(day_begin) +
                                  TimeGrid::kSlotsPerDay);
  LineChartOptions day_options;
  day_options.title = "(a) one day — bytes per 10 minutes (Thursday)";
  day_options.x_label = "hour of day 0..24";
  day_options.height = 12;
  std::cout << line_chart(one_day, day_options) << "\n";

  const auto features = compute_time_features(total);
  std::cout << "daily peaks detected at:";
  for (const double h : features.weekday.peak_hours)
    std::cout << " " << format_peak_time(h);
  std::cout << "   (paper: ~12:00 and ~22:00)\n";
  std::cout << "daily valley at " << format_peak_time(features.weekday.valley_hour)
            << "   (paper: deep night, traffic follows sleep)\n\n";

  // (b) One week.
  std::vector<double> one_week(total.begin(),
                               total.begin() + TimeGrid::kSlotsPerWeek);
  LineChartOptions week_options;
  week_options.title = "(b) one week — bytes per 10 minutes (Mon..Sun)";
  week_options.x_label = "day of week 0..7";
  week_options.height = 12;
  std::cout << line_chart(one_week, week_options) << "\n";

  // (c) Four weeks, daily totals.
  std::vector<double> daily_totals(TimeGrid::kDays, 0.0);
  for (std::size_t s = 0; s < total.size(); ++s)
    daily_totals[static_cast<std::size_t>(TimeGrid::day(s))] += total[s];
  LineChartOptions month_options;
  month_options.title = "(c) four weeks — bytes per day";
  month_options.x_label = "day 0..28 (weekly dips = weekends)";
  month_options.height = 10;
  std::cout << line_chart(daily_totals, month_options) << "\n";

  // Quantify the weekly pattern: weekday vs weekend daily totals.
  double weekday_total = 0.0;
  double weekend_total = 0.0;
  for (int d = 0; d < TimeGrid::kDays; ++d) {
    if (d % 7 < 5) weekday_total += daily_totals[static_cast<std::size_t>(d)];
    else weekend_total += daily_totals[static_cast<std::size_t>(d)];
  }
  std::cout << "mean weekday traffic / mean weekend traffic = "
            << format_double((weekday_total / 20.0) / (weekend_total / 8.0), 3)
            << "   (paper: weekend traffic < weekday traffic)\n";

  export_series("fig01a_one_day", one_day, "bytes_per_slot");
  export_series("fig01b_one_week", one_week, "bytes_per_slot");
  export_series("fig01c_daily_totals", daily_totals, "bytes_per_day");
  std::cout << "\nCSV exported to " << figure_output_dir() << "/fig01*.csv\n";
  return 0;
}
