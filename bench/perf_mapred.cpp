// Perf/ablation: the vectorizer's MapReduce substrate — throughput vs
// worker count and chunk size, plus the cleaner stage.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "city/deployment.h"
#include "pipeline/cleaner.h"
#include "pipeline/vectorizer.h"
#include "traffic/trace_generator.h"

namespace {

using namespace cellscope;

struct Fixture {
  std::vector<Tower> towers;
  std::vector<TrafficLog> logs;
};

const Fixture& fixture() {
  static const Fixture instance = [] {
    Fixture f;
    const auto city = CityModel::create_default();
    DeploymentOptions deployment;
    deployment.n_towers = 12;
    f.towers = deploy_towers(city, deployment);
    const auto intensity =
        IntensityModel::create(f.towers, IntensityOptions{});
    TraceOptions options;
    options.day_begin = 0;
    options.day_end = 7;
    f.logs = generate_trace(f.towers, intensity, options).logs;
    return f;
  }();
  return instance;
}

void BM_VectorizeByThreads(benchmark::State& state) {
  const auto& f = fixture();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto matrix = vectorize_logs(f.logs, f.towers, pool);
    benchmark::DoNotOptimize(matrix);
  }
  state.counters["logs"] = static_cast<double>(f.logs.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(f.logs.size()) *
                          state.iterations());
}
BENCHMARK(BM_VectorizeByThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_VectorizeByChunkSize(benchmark::State& state) {
  const auto& f = fixture();
  ThreadPool pool(4);
  VectorizerOptions options;
  options.chunk_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto matrix = vectorize_logs(f.logs, f.towers, pool, options);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_VectorizeByChunkSize)
    ->Arg(1024)->Arg(16384)->Arg(262144)
    ->Unit(benchmark::kMillisecond);

void BM_Cleaner(benchmark::State& state) {
  const auto& f = fixture();
  for (auto _ : state) {
    auto logs = f.logs;  // cleaning consumes its input
    auto cleaned = clean_logs(std::move(logs));
    benchmark::DoNotOptimize(cleaned);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(f.logs.size()) *
                          state.iterations());
}
BENCHMARK(BM_Cleaner)->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  const auto city = CityModel::create_default();
  DeploymentOptions deployment;
  deployment.n_towers = 8;
  const auto towers = deploy_towers(city, deployment);
  const auto intensity = IntensityModel::create(towers, IntensityOptions{});
  TraceOptions options;
  options.day_begin = 0;
  options.day_end = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto trace = generate_trace(towers, intensity, options);
    benchmark::DoNotOptimize(trace);
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(1)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

CELLSCOPE_BENCH_JSON("perf_mapred");
