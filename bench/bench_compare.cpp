// Perf-regression gate: diffs fresh BENCH_*.json reports against committed
// baselines and fails on wall-time regressions beyond a threshold.
//
//   bench_compare <baseline.json|dir> <fresh.json|dir> [threshold]
//
// File mode compares one report pair; directory mode pairs every
// BENCH_*.json in the baseline directory with its namesake in the fresh
// directory. The gate is the report's top-level "wall_s" (whole-process
// wall time): fresh > (1 + threshold) * baseline fails. Per-stage span
// totals are printed as context but do not gate (they are noisier).
// Exit codes: 0 = within budget, 1 = regression (or missing fresh
// report), 2 = usage/parse error. Driven by scripts/check_perf.sh.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"

namespace fs = std::filesystem;
using cellscope::JsonValue;

namespace {

constexpr double kDefaultThreshold = 0.15;

JsonValue load_report(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw cellscope::IoError("cannot read report: " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return JsonValue::parse(buffer.str());
}

/// Sum of span durations per stage name, in milliseconds.
std::map<std::string, double> stage_totals_ms(const JsonValue& report) {
  std::map<std::string, double> totals;
  if (!report.contains("stages")) return totals;
  for (const auto& stage : report.at("stages").as_array())
    totals[stage.at("name").as_string()] +=
        stage.at("dur_us").as_number() / 1e3;
  return totals;
}

std::string format_pct(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", ratio * 100.0);
  return buf;
}

std::string format_s(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  return buf;
}

/// One baseline/fresh comparison, for the gate and the summary table.
struct PairResult {
  bool ok = true;
  double base_wall = 0.0;
  double fresh_wall = 0.0;
};

/// Compares one baseline/fresh pair; `.ok` is false on regression.
PairResult compare_pair(const fs::path& baseline_path,
                        const fs::path& fresh_path, double threshold) {
  const JsonValue baseline = load_report(baseline_path);
  const JsonValue fresh = load_report(fresh_path);

  const double base_wall = baseline.at("wall_s").as_number();
  const double fresh_wall = fresh.at("wall_s").as_number();
  if (base_wall <= 0.0) {
    std::cout << "SKIP  " << baseline_path.filename().string()
              << "  (baseline wall_s <= 0)\n";
    return {true, base_wall, fresh_wall};
  }
  const double ratio = fresh_wall / base_wall - 1.0;
  const bool ok = ratio <= threshold;
  std::cout << (ok ? "OK    " : "FAIL  ")
            << baseline_path.filename().string() << "  wall "
            << format_s(base_wall) << " -> " << format_s(fresh_wall) << "  ("
            << format_pct(ratio) << ", budget +"
            << static_cast<int>(threshold * 100.0) << "%)\n";

  // Per-stage context: the three biggest movers among shared stages.
  const auto base_stages = stage_totals_ms(baseline);
  const auto fresh_stages = stage_totals_ms(fresh);
  std::vector<std::pair<double, std::string>> movers;
  for (const auto& [name, base_ms] : base_stages) {
    const auto it = fresh_stages.find(name);
    if (it == fresh_stages.end() || base_ms <= 0.0) continue;
    movers.emplace_back(it->second / base_ms - 1.0, name);
  }
  std::sort(movers.begin(), movers.end(), [](const auto& a, const auto& b) {
    return std::abs(a.first) > std::abs(b.first);
  });
  for (std::size_t i = 0; i < std::min<std::size_t>(3, movers.size()); ++i)
    std::cout << "        stage " << movers[i].second << "  "
              << format_pct(movers[i].first) << "\n";
  return {ok, base_wall, fresh_wall};
}

/// Summary table: wall time and speedup vs baseline, one row per bench
/// (speedup > 1.00x = fresh is faster).
void print_speedup_table(
    const std::vector<std::pair<std::string, PairResult>>& results) {
  std::size_t width = 5;
  for (const auto& [name, result] : results)
    width = std::max(width, name.size());
  std::cout << "\nspeedup vs baseline:\n";
  std::printf("  %-*s  %9s  %9s  %8s\n", static_cast<int>(width), "bench",
              "baseline", "fresh", "speedup");
  for (const auto& [name, result] : results) {
    if (result.base_wall <= 0.0 || result.fresh_wall <= 0.0) {
      std::printf("  %-*s  %9s  %9s  %8s\n", static_cast<int>(width),
                  name.c_str(), format_s(result.base_wall).c_str(),
                  format_s(result.fresh_wall).c_str(), "n/a");
      continue;
    }
    std::printf("  %-*s  %9s  %9s  %7.2fx\n", static_cast<int>(width),
                name.c_str(), format_s(result.base_wall).c_str(),
                format_s(result.fresh_wall).c_str(),
                result.base_wall / result.fresh_wall);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::cerr << "usage: bench_compare <baseline.json|dir> <fresh.json|dir> "
                 "[threshold]\n";
    return 2;
  }
  const fs::path baseline_arg = argv[1];
  const fs::path fresh_arg = argv[2];
  double threshold = kDefaultThreshold;
  if (argc == 4) {
    try {
      threshold = std::stod(argv[3]);
    } catch (const std::exception&) {
      std::cerr << "bench_compare: invalid threshold: " << argv[3] << "\n";
      return 2;
    }
  }

  try {
    if (fs::is_directory(baseline_arg)) {
      if (!fs::is_directory(fresh_arg)) {
        std::cerr << "bench_compare: " << fresh_arg
                  << " must be a directory when the baseline is one\n";
        return 2;
      }
      std::vector<fs::path> baselines;
      for (const auto& entry : fs::directory_iterator(baseline_arg)) {
        const std::string name = entry.path().filename().string();
        if (entry.is_regular_file() && name.starts_with("BENCH_") &&
            name.ends_with(".json"))
          baselines.push_back(entry.path());
      }
      std::sort(baselines.begin(), baselines.end());
      if (baselines.empty()) {
        std::cerr << "bench_compare: no BENCH_*.json baselines in "
                  << baseline_arg << "\n";
        return 2;
      }
      bool all_ok = true;
      std::vector<std::pair<std::string, PairResult>> results;
      for (const auto& baseline : baselines) {
        const fs::path fresh = fresh_arg / baseline.filename();
        // "BENCH_foo.json" -> "foo" for the summary table.
        std::string name = baseline.filename().string();
        name = name.substr(6, name.size() - 6 - 5);
        if (!fs::exists(fresh)) {
          std::cout << "FAIL  " << baseline.filename().string()
                    << "  (no fresh report — did the bench crash?)\n";
          all_ok = false;
          results.emplace_back(name, PairResult{false, 0.0, 0.0});
          continue;
        }
        const PairResult result = compare_pair(baseline, fresh, threshold);
        if (!result.ok) all_ok = false;
        results.emplace_back(name, result);
      }
      print_speedup_table(results);
      return all_ok ? 0 : 1;
    }
    return compare_pair(baseline_arg, fresh_arg, threshold).ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 2;
  }
}
