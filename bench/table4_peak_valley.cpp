// Table 4 — peak-valley features of the cluster aggregates: maximum
// traffic, minimum traffic and their ratio, for weekday and weekend.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Table 4", "Peak-valley features per region aggregate");
  const auto& e = experiment();

  struct PaperRow {
    double max_wd, max_we, min_wd, min_we, ratio_wd, ratio_we;
  };
  // Paper values (bytes per 10 min of the cluster aggregate).
  const PaperRow paper[kNumRegions] = {
      {7.77e8, 7.99e8, 8.70e7, 8.71e7, 8.93, 9.17},      // resident
      {2.76e8, 1.55e8, 2.07e6, 1.35e6, 133.33, 114.81},  // transport
      {4.69e8, 2.78e8, 2.04e7, 1.74e7, 22.99, 15.98},    // office
      {4.55e8, 4.90e8, 1.41e7, 1.42e7, 32.27, 34.51},    // entertainment
      {7.36e8, 7.38e8, 7.77e7, 7.29e7, 9.47, 10.12},     // comprehensive
  };

  TextTable table("measured (paper) — bytes per 10-minute slot");
  table.set_header({"region", "max wd", "max we", "min wd", "min we",
                    "ratio wd", "ratio we"});
  for (const auto region : all_regions()) {
    const auto f = compute_time_features(e.region_aggregate(region));
    const auto& p = paper[static_cast<int>(region)];
    table.add_row(
        {region_name(region),
         sci(f.weekday.max_traffic) + " (" + sci(p.max_wd) + ")",
         sci(f.weekend.max_traffic) + " (" + sci(p.max_we) + ")",
         sci(f.weekday.min_traffic) + " (" + sci(p.min_wd) + ")",
         sci(f.weekend.min_traffic) + " (" + sci(p.min_we) + ")",
         format_double(f.weekday.peak_valley_ratio, 1) + " (" +
             format_double(p.ratio_wd, 1) + ")",
         format_double(f.weekend.peak_valley_ratio, 1) + " (" +
             format_double(p.ratio_we, 1) + ")"});
  }
  std::cout << table.render() << "\n";
  std::cout
      << "shape checks (the paper's qualitative claims):\n"
      << "  * transport has the highest peak-valley ratio by far\n"
      << "  * transport has the lowest absolute maximum traffic\n"
      << "  * resident & comprehensive have the lowest ratios (~9)\n"
      << "  * transport/office weekend maxima are well below weekday\n";
  return 0;
}
