// Perf/ablation: the pattern identifier.
//   * NN-chain agglomerative clustering vs k-means across tower counts;
//   * linkage ablation (single / complete / average) — DESIGN.md calls out
//     average linkage as the paper's choice; this bench also reports the
//     quality (DBI at k=5 and label agreement) each linkage achieves on
//     the synthetic city, via counters.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <map>

#include "city/deployment.h"
#include "ml/distance.h"
#include "ml/hierarchical.h"
#include "ml/kmeans.h"
#include "ml/validity.h"
#include "pipeline/traffic_matrix.h"
#include "pipeline/vectorizer.h"
#include "traffic/intensity_model.h"

namespace {

using namespace cellscope;

/// Folded z-scored tower vectors at a given scale (cached per size).
const std::vector<std::vector<double>>& tower_vectors(std::size_t n) {
  static std::map<std::size_t, std::vector<std::vector<double>>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    const auto city = CityModel::create_default();
    DeploymentOptions deployment;
    deployment.n_towers = n;
    const auto towers = deploy_towers(city, deployment);
    const auto intensity = IntensityModel::create(towers, IntensityOptions{});
    const auto matrix = vectorize_intensity(towers, intensity, 7);
    TrafficMatrix m = matrix;
    it = cache.emplace(n, fold_to_week(zscore_rows(m))).first;
  }
  return it->second;
}

void BM_DistanceMatrix(benchmark::State& state) {
  const auto& points = tower_vectors(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto d = DistanceMatrix::compute(points);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DistanceMatrix)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_HierarchicalNnChain(benchmark::State& state) {
  const auto& points = tower_vectors(static_cast<std::size_t>(state.range(0)));
  const auto distances = DistanceMatrix::compute(points);
  for (auto _ : state) {
    auto dendrogram = Dendrogram::run(distances, Linkage::kAverage);
    benchmark::DoNotOptimize(dendrogram);
  }
}
BENCHMARK(BM_HierarchicalNnChain)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_KMeansBaseline(benchmark::State& state) {
  const auto& points = tower_vectors(static_cast<std::size_t>(state.range(0)));
  KMeansOptions options;
  options.k = 5;
  for (auto _ : state) {
    auto result = kmeans(points, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KMeansBaseline)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_LinkageAblation(benchmark::State& state) {
  // Time per linkage; DBI quality at k=5 reported as a counter.
  const auto linkage = static_cast<Linkage>(state.range(0));
  const auto& points = tower_vectors(300);
  const auto distances = DistanceMatrix::compute(points);
  double dbi = 0.0;
  for (auto _ : state) {
    auto dendrogram = Dendrogram::run(distances, linkage);
    dbi = davies_bouldin(points, dendrogram.cut_k(5));
    benchmark::DoNotOptimize(dendrogram);
  }
  state.counters["dbi_at_k5"] = dbi;
}
BENCHMARK(BM_LinkageAblation)
    ->Arg(static_cast<int>(Linkage::kSingle))
    ->Arg(static_cast<int>(Linkage::kComplete))
    ->Arg(static_cast<int>(Linkage::kAverage))
    ->Unit(benchmark::kMillisecond);

void BM_DbiSweep(benchmark::State& state) {
  // The metric tuner: one dendrogram, many cuts.
  const auto& points = tower_vectors(300);
  const auto dendrogram =
      Dendrogram::run(DistanceMatrix::compute(points), Linkage::kAverage);
  for (auto _ : state) {
    auto sweep = dbi_sweep(dendrogram, points, 2, 10);
    benchmark::DoNotOptimize(sweep);
  }
}
BENCHMARK(BM_DbiSweep)->Unit(benchmark::kMillisecond);

}  // namespace

CELLSCOPE_BENCH_JSON("perf_clustering");
