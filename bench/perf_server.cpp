// Perf: serving-plane throughput. A closed-loop loopback load bench —
// the BlockingHttpClient pipelines bursts of identical GETs against a
// live QueryServer and measures end-to-end requests/second, the number
// ISSUE 9 gates at >= 50k req/s on one core:
//   - GET /towers/<id>/window   the O(1) hot path (shard-lock stat read)
//   - GET /towers/<id>/class    full window copy + nearest-centroid
//   - GET /stats                the serving-plane self-view
//   - a 4-thread closed loop on /window, one keep-alive connection per
//     client thread, for contention honesty on multicore hosts
// Each case also reports the server-side p99 from the per-endpoint
// latency histogram so the BENCH json keeps tail latency honest, not
// just throughput.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <cmath>
#include <memory>
#include <numbers>
#include <string>
#include <vector>

#include "common/time_grid.h"
#include "mapred/thread_pool.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/query_service.h"
#include "server/server.h"
#include "stream/ingestor.h"
#include "stream/online_classifier.h"
#include "stream/tower_window.h"

namespace {

using namespace cellscope;
using namespace cellscope::server;

constexpr std::size_t kDaySlots = TimeGrid::kSlotsPerDay;
constexpr std::uint32_t kTowers = 16;
constexpr std::size_t kBurst = 512;

std::uint64_t office_bytes(std::size_t slot) {
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(slot % kDaySlots) /
      kDaySlots;
  return static_cast<std::uint64_t>(2000.0 + 1500.0 * std::sin(phase));
}

std::uint64_t resident_bytes(std::size_t slot) {
  const double phase =
      2.0 * std::numbers::pi * static_cast<double>(slot % kDaySlots) /
      kDaySlots;
  return static_cast<std::uint64_t>(2000.0 - 1500.0 * std::sin(phase));
}

ModelSnapshot synthetic_model() {
  ModelSnapshot model;
  for (const auto profile : {office_bytes, resident_bytes}) {
    TowerWindow window;
    for (std::size_t slot = 0; slot < TimeGrid::kSlots; ++slot)
      window.add(slot * TimeGrid::kSlotMinutes, profile(slot));
    model.centroids.push_back(window.folded_week());
  }
  model.regions = {FunctionalRegion::kOffice, FunctionalRegion::kResident};
  model.populations = {kTowers / 2, kTowers / 2};
  model.has_primaries = false;
  return model;
}

/// One live daemon for the whole process: kTowers fully-populated
/// windows, a published model, and a started QueryServer on an ephemeral
/// loopback port. Leaked deliberately — the acceptor/worker threads must
/// outlive every benchmark iteration and google-benchmark owns main().
struct ServingPlane {
  ThreadPool pool{2};
  StreamIngestor ingestor{StreamConfig{.queue_capacity = 0}};
  QueryService service{ingestor, &pool};
  QueryServer server;

  ServingPlane() : server(service, make_config()) {
    std::vector<TrafficLog> logs;
    for (std::uint32_t tower = 0; tower < kTowers; ++tower) {
      const auto profile = tower % 2 == 0 ? office_bytes : resident_bytes;
      for (std::size_t slot = 0; slot < TimeGrid::kSlots; ++slot) {
        TrafficLog log;
        log.tower_id = tower;
        log.start_minute =
            static_cast<std::uint32_t>(slot * TimeGrid::kSlotMinutes);
        log.end_minute = log.start_minute;
        log.bytes = profile(slot);
        logs.push_back(log);
      }
    }
    ingestor.offer_batch(logs);
    ingestor.drain(pool);
    service.publish_model(
        std::make_shared<const OnlineClassifier>(synthetic_model()));
    server.start();
  }

  static ServerConfig make_config() {
    ServerConfig config;
    config.workers = 4;
    config.max_pending = 256;
    return config;
  }
};

ServingPlane& plane() {
  static ServingPlane* instance = new ServingPlane();
  return *instance;
}

/// Attaches the server-side p99 for `endpoint` (delta-free: the
/// histogram accumulates across cases, but each case dominates its own
/// endpoint, so the quantile stays representative).
void report_p99(benchmark::State& state, Endpoint endpoint) {
  const auto& hist =
      *ServerMetrics::instance().latency_ms[static_cast<std::size_t>(
          endpoint)];
  state.counters["p99_ms"] = hist.quantile(0.99);
}

/// Closed-loop pipelined bursts of one GET target on one keep-alive
/// connection; items/s is the req/s the gate watches.
void burst_loop(benchmark::State& state, const std::string& target,
                Endpoint endpoint) {
  BlockingHttpClient client(plane().server.port());
  for (auto _ : state) {
    const auto responses = client.get_burst(target, kBurst);
    if (responses.size() != kBurst ||
        responses.front().status != 200) {
      state.SkipWithError("short or failed burst");
      return;
    }
    benchmark::DoNotOptimize(responses.back().body.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBurst));
  if (state.thread_index() == 0) report_p99(state, endpoint);
}

void BM_ServerWindow(benchmark::State& state) {
  burst_loop(state, "/towers/3/window", Endpoint::kWindow);
}
BENCHMARK(BM_ServerWindow)->Unit(benchmark::kMillisecond);

void BM_ServerClass(benchmark::State& state) {
  burst_loop(state, "/towers/3/class", Endpoint::kClass);
}
BENCHMARK(BM_ServerClass)->Unit(benchmark::kMillisecond);

void BM_ServerStats(benchmark::State& state) {
  burst_loop(state, "/stats", Endpoint::kStats);
}
BENCHMARK(BM_ServerStats)->Unit(benchmark::kMillisecond);

/// Contended closed loop: each benchmark thread drives its own
/// keep-alive connection against the shared worker pool.
void BM_ServerWindowConcurrent(benchmark::State& state) {
  burst_loop(state, "/towers/" + std::to_string(state.thread_index()) +
                        "/window",
             Endpoint::kWindow);
}
BENCHMARK(BM_ServerWindowConcurrent)
    ->Threads(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CELLSCOPE_BENCH_JSON("perf_server");
