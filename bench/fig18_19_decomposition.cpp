// Figures 18 & 19 — one comprehensive tower's convex decomposition shown
// in both domains: the frequency-space combination of the four primary
// components (Fig. 18) and the time-domain stack of the weighted primary
// traffic patterns against the tower's own normalized traffic (Fig. 19).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  banner("Figures 18 & 19",
         "Convex decomposition of one comprehensive tower (the paper's P5)");
  const auto& e = experiment();
  const auto& features = e.freq_features();
  const auto& reps = e.representatives();

  std::array<std::array<double, 3>, 4> primaries;
  std::array<std::vector<double>, 4> primary_series;
  for (int r = 0; r < 4; ++r) {
    primaries[r] = features[reps[r]].qp_feature();
    primary_series[r] = e.zscored()[reps[r]];
  }

  // Pick the 5th comprehensive tower (the paper decomposes P5).
  const auto comprehensive_rows = e.rows_of_cluster(
      *e.cluster_of_region(FunctionalRegion::kComprehensive));
  const std::size_t target_row =
      comprehensive_rows[std::min<std::size_t>(4,
                                               comprehensive_rows.size() - 1)];
  const auto target_feature = features[target_row].qp_feature();
  const auto decomposition = decompose_feature(target_feature, primaries);

  // Fig 18: the frequency-space view.
  TextTable table("Fig 18 — frequency-space combination");
  table.set_header({"", "A28", "P28", "A56", "weight"});
  table.add_row({"target tower", format_double(target_feature[0], 3),
                 format_double(target_feature[1], 3),
                 format_double(target_feature[2], 3), ""});
  std::array<double, 3> fitted{};
  for (int r = 0; r < 4; ++r) {
    table.add_row({"F" + std::to_string(r + 1) + " (" +
                       region_name(static_cast<FunctionalRegion>(r)) + ")",
                   format_double(primaries[r][0], 3),
                   format_double(primaries[r][1], 3),
                   format_double(primaries[r][2], 3),
                   format_double(decomposition.coefficients[r], 3)});
    for (int d = 0; d < 3; ++d)
      fitted[d] += decomposition.coefficients[r] * primaries[r][d];
  }
  table.add_row({"fitted F^r", format_double(fitted[0], 3),
                 format_double(fitted[1], 3), format_double(fitted[2], 3),
                 "residual " + format_double(decomposition.residual, 3)});
  std::cout << table.render() << "\n";

  // Fig 19: the time-domain view (first week).
  const auto combined =
      combine_series(decomposition.coefficients, primary_series);
  const auto& target_series = e.zscored()[target_row];
  std::vector<double> target_week(
      target_series.begin(), target_series.begin() + TimeGrid::kSlotsPerWeek);
  std::vector<double> combined_week(
      combined.begin(), combined.begin() + TimeGrid::kSlotsPerWeek);
  LineChartOptions options;
  options.title = "Fig 19 — tower traffic vs convex combination of the four "
                  "primary patterns (one week, z-scored)";
  options.series_names = {"tower", "combination"};
  options.height = 12;
  std::cout << line_chart({target_week, combined_week}, options) << "\n";
  std::cout << "time-domain correlation: "
            << format_double(pearson(target_series, combined), 3) << "\n\n";

  // Individual components, as the right panel of the paper's Fig 19.
  for (int r = 0; r < 4; ++r) {
    if (decomposition.coefficients[r] < 0.01) continue;
    std::vector<double> component_week;
    for (int s = 0; s < TimeGrid::kSlotsPerWeek; ++s)
      component_week.push_back(decomposition.coefficients[r] *
                               primary_series[r][static_cast<std::size_t>(s)]);
    LineChartOptions comp_options;
    comp_options.title =
        "component: " + format_double(decomposition.coefficients[r], 2) +
        " x " + region_name(static_cast<FunctionalRegion>(r));
    comp_options.height = 6;
    std::cout << line_chart(component_week, comp_options) << "\n";
  }

  std::cout << "latent mixture of this tower (synthetic ground truth):";
  for (const double w :
       e.intensity().model(e.matrix().tower_ids[target_row]).mixture)
    std::cout << " " << format_double(w, 2);
  std::cout << "\n";
  return 0;
}
