// Extension — traffic forecasting (the paper's §1 use case: users pick
// towers with predicted lower traffic; ISPs provision per pattern).
//
// Trains on the first three weeks of every tower's series and scores the
// fourth week: seasonal-naive vs the spectral forecaster vs the
// pattern-template cold-start forecaster (which sees only the first day).
#include <iostream>

#include "bench_common.h"
#include "forecast/metrics.h"
#include "forecast/pattern_forecaster.h"
#include "forecast/seasonal_naive.h"
#include "forecast/spectral_forecaster.h"
#include "obs/metrics.h"
#include "obs/timer.h"

int main() {
  using namespace cellscope;
  using namespace cellscope::bench;

  enable_json_report("ext_forecast_accuracy");
  banner("Extension: forecasting",
         "Week-4 forecast accuracy per method (trained on weeks 1-3)");
  const auto& e = experiment();

  // Pattern templates: labeled cluster centroids (z-scored weeks).
  const auto folded = fold_to_week(e.zscored());
  const auto centroids = cluster_centroids(folded, e.labels());
  PatternForecaster pattern_forecaster(centroids);

  const std::size_t train = 3 * TimeGrid::kSlotsPerWeek;
  const std::size_t test = TimeGrid::kSlotsPerWeek;

  struct Tally {
    double smape_total = 0.0;
    double skill_total = 0.0;
  };
  Tally naive_tally;
  Tally spectral_tally;
  Tally pattern_tally;

  const std::size_t sample =
      std::min<std::size_t>(e.matrix().n(), 300);  // keep runtime bounded
  obs::MetricsRegistry::instance()
      .counter("cellscope.ext.forecast_rows")
      .add(sample);
  {
    obs::StageSpan span("ext.forecast_sweep", "ext", obs::LogLevel::kDebug);
    span.annotate({"towers", sample});
    for (std::size_t row = 0; row < sample; ++row) {
      const auto& series = e.matrix().rows[row];
      const std::span<const double> history(series.data(), train);
      const std::span<const double> actual(series.data() + train, test);

      const auto naive = seasonal_naive_forecast(history, test);
      const auto spectral = spectral_forecast(history, test);
      // Cold start: only the first day observed.
      const std::span<const double> one_day(series.data(),
                                            TimeGrid::kSlotsPerDay);
      auto pattern = pattern_forecaster.forecast(
          one_day, train + test - TimeGrid::kSlotsPerDay);
      const std::vector<double> pattern_week(pattern.end() - static_cast<long>(test),
                                             pattern.end());

      naive_tally.smape_total += smape(actual, naive);
      naive_tally.skill_total += mae_skill_vs_mean(actual, naive);
      spectral_tally.smape_total += smape(actual, spectral);
      spectral_tally.skill_total += mae_skill_vs_mean(actual, spectral);
      pattern_tally.smape_total += smape(actual, pattern_week);
      pattern_tally.skill_total += mae_skill_vs_mean(actual, pattern_week);
    }
  }

  const double n = static_cast<double>(sample);
  TextTable table("mean forecast error over " + std::to_string(sample) +
                  " towers (lower is better)");
  table.set_header({"method", "history used", "sMAPE", "MAE skill vs mean"});
  table.add_row({"seasonal naive", "3 weeks",
                 format_double(naive_tally.smape_total / n, 3),
                 format_double(naive_tally.skill_total / n, 3)});
  table.add_row({"spectral (harmonic truncation)", "3 weeks",
                 format_double(spectral_tally.smape_total / n, 3),
                 format_double(spectral_tally.skill_total / n, 3)});
  table.add_row({"pattern template (cold start)", "1 day",
                 format_double(pattern_tally.smape_total / n, 3),
                 format_double(pattern_tally.skill_total / n, 3)});
  std::cout << table.render() << "\n";
  std::cout
      << "readings:\n"
      << "  * on MAE skill the spectral forecaster beats seasonal-naive "
         "by averaging sampling noise out of the weekly shape — the "
         "operational payoff of the paper's frequency-domain model (its "
         "sMAPE is hurt by the harmonic truncation clipping deep "
         "night-valley values, which sMAPE weights heavily);\n"
      << "  * the cold-start forecaster reaches the best accuracy from a "
         "single day of history because five templates cover every tower "
         "(the paper's central claim turned into a provisioning tool).\n";
  return 0;
}
